package stats

import (
	"fmt"
	"math"
	"strings"
)

// BarChart renders a horizontal ASCII bar chart: one row per label,
// bars scaled so the maximum value spans width characters. Values are
// printed after each bar with the given format. NaN values render as
// empty bars marked "n/a".
func BarChart(labels []string, values []float64, width int, format string) string {
	if width < 1 {
		width = 40
	}
	if format == "" {
		format = "%.3g"
	}
	max := 0.0
	for _, v := range values {
		if !math.IsNaN(v) && v > max {
			max = v
		}
	}
	labelWidth := 0
	for _, l := range labels {
		if len(l) > labelWidth {
			labelWidth = len(l)
		}
	}
	var b strings.Builder
	for i, l := range labels {
		v := math.NaN()
		if i < len(values) {
			v = values[i]
		}
		fmt.Fprintf(&b, "%-*s |", labelWidth, l)
		if math.IsNaN(v) {
			b.WriteString(strings.Repeat(" ", width))
			b.WriteString("| n/a\n")
			continue
		}
		n := 0
		if max > 0 {
			n = int(math.Round(v / max * float64(width)))
		}
		if n > width {
			n = width
		}
		b.WriteString(strings.Repeat("#", n))
		b.WriteString(strings.Repeat(" ", width-n))
		b.WriteString("| ")
		fmt.Fprintf(&b, format, v)
		b.WriteByte('\n')
	}
	return b.String()
}

// Series renders two aligned numeric series as a compact comparison
// block — used for the Figure 5/6 style round series where two
// strategies are plotted against the same x axis.
func Series(xLabel string, xs []int, names [2]string, a, b []float64, format string) string {
	if format == "" {
		format = "%.3f"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-6s", xLabel)
	fmt.Fprintf(&sb, "%12s%12s\n", names[0], names[1])
	for i, x := range xs {
		va, vb := math.NaN(), math.NaN()
		if i < len(a) {
			va = a[i]
		}
		if i < len(b) {
			vb = b[i]
		}
		fmt.Fprintf(&sb, "%-6d", x)
		for _, v := range [2]float64{va, vb} {
			if math.IsNaN(v) {
				fmt.Fprintf(&sb, "%12s", "-")
			} else {
				fmt.Fprintf(&sb, "%12s", fmt.Sprintf(format, v))
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
