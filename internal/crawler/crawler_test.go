package crawler

import (
	"testing"

	"sightrisk/internal/graph"
	"sightrisk/internal/profile"
	"sightrisk/internal/synthetic"
)

func world(t *testing.T) (*graph.Graph, *profile.Store, graph.UserID) {
	t.Helper()
	cfg := synthetic.SmallStudyConfig()
	cfg.Owners = 1
	cfg.Ego.Strangers = 150
	cfg.Ego.Friends = 30
	cfg.Seed = 5
	study, err := synthetic.GenerateStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return study.Graph, study.Profiles, study.Owners[0].ID
}

func TestNewValidation(t *testing.T) {
	g, store, owner := world(t)
	if _, err := New(nil, store, owner, DefaultConfig()); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := New(g, nil, owner, DefaultConfig()); err == nil {
		t.Fatal("nil profiles accepted")
	}
	if _, err := New(g, store, 999999, DefaultConfig()); err == nil {
		t.Fatal("unknown owner accepted")
	}
	bad := DefaultConfig()
	bad.InteractionsPerTick = 0
	if _, err := New(g, store, owner, bad); err == nil {
		t.Fatal("zero interactions accepted")
	}
	bad = DefaultConfig()
	bad.APIBudgetPerTick = 0
	if _, err := New(g, store, owner, bad); err == nil {
		t.Fatal("zero API budget accepted")
	}
}

func TestInitialKnowledge(t *testing.T) {
	g, store, owner := world(t)
	c, err := New(g, store, owner, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	known, knownProfiles := c.Known()
	// Owner and every friend known, with friendships.
	for _, f := range g.Friends(owner) {
		if !known.HasEdge(owner, f) {
			t.Fatalf("friendship %d-%d not known at start", owner, f)
		}
		if knownProfiles.Get(f) == nil {
			t.Fatalf("friend %d profile not known", f)
		}
	}
	// Friend-friend edges visible at install time.
	friends := g.Friends(owner)
	for i, a := range friends {
		for _, b := range friends[i+1:] {
			if g.HasEdge(a, b) != known.HasEdge(a, b) {
				t.Fatalf("friend edge %d-%d knowledge mismatch", a, b)
			}
		}
	}
	// No strangers yet.
	if len(c.Discovered()) != 0 {
		t.Fatal("strangers known before any tick")
	}
}

func TestRateLimitRespected(t *testing.T) {
	g, store, owner := world(t)
	cfg := Config{InteractionsPerTick: 50, APIBudgetPerTick: 2, Seed: 1}
	c, err := New(g, store, owner, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		rep := c.Tick()
		if rep.Resolved > cfg.APIBudgetPerTick {
			t.Fatalf("tick %d resolved %d > budget %d", rep.Tick, rep.Resolved, cfg.APIBudgetPerTick)
		}
	}
	if got := len(c.Discovered()); got > 40 {
		t.Fatalf("discovered %d after 20 ticks with budget 2, want <= 40", got)
	}
}

func TestDiscoveryMonotoneAndConsistent(t *testing.T) {
	g, store, owner := world(t)
	c, err := New(g, store, owner, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	prev := 0
	for i := 0; i < 50; i++ {
		c.Tick()
		st := c.Stats()
		if st.Discovered < prev {
			t.Fatal("discovered count decreased")
		}
		prev = st.Discovered
	}
	// Every discovered stranger: known node, known profile, edges
	// match truth's mutual friends, and is a true stranger.
	known, knownProfiles := c.Known()
	trueStrangers := map[graph.UserID]bool{}
	for _, s := range g.Strangers(owner) {
		trueStrangers[s] = true
	}
	for _, s := range c.Discovered() {
		if !trueStrangers[s] {
			t.Fatalf("discovered %d is not a true stranger", s)
		}
		if knownProfiles.Get(s) == nil {
			t.Fatalf("discovered %d has no profile", s)
		}
		wantMutual := g.MutualFriends(owner, s)
		gotMutual := known.MutualFriends(owner, s)
		if len(wantMutual) != len(gotMutual) {
			t.Fatalf("stranger %d: known %d mutual friends, truth %d", s, len(gotMutual), len(wantMutual))
		}
	}
}

func TestNoDuplicateDiscovery(t *testing.T) {
	g, store, owner := world(t)
	c, err := New(g, store, owner, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		c.Tick()
	}
	seen := map[graph.UserID]bool{}
	for _, s := range c.Discovered() {
		if seen[s] {
			t.Fatalf("stranger %d discovered twice", s)
		}
		seen[s] = true
	}
}

func TestRunUntil(t *testing.T) {
	g, store, owner := world(t)
	c, err := New(g, store, owner, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	used := c.RunUntil(30, 1000)
	if used == 0 || used == 1000 {
		t.Fatalf("RunUntil used %d ticks", used)
	}
	if got := len(c.Discovered()); got < 30 {
		t.Fatalf("discovered %d, want >= 30", got)
	}
	// Already satisfied target: no ticks.
	if used := c.RunUntil(10, 100); used != 0 {
		t.Fatalf("RunUntil on met target used %d ticks", used)
	}
	// Cap respected.
	if used := c.RunUntil(1<<30, 3); used != 3 {
		t.Fatalf("RunUntil cap used %d ticks, want 3", used)
	}
}

func TestEventualFullCoverage(t *testing.T) {
	g, store, owner := world(t)
	cfg := Config{InteractionsPerTick: 100, APIBudgetPerTick: 50, Seed: 2}
	c, err := New(g, store, owner, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.RunUntil(len(g.Strangers(owner)), 3000)
	st := c.Stats()
	if st.Coverage < 0.99 {
		t.Fatalf("coverage %.2f after long crawl, want ≈ 1", st.Coverage)
	}
	// Discovered count equals API calls (one query per stranger).
	if st.APICalls != st.Discovered {
		t.Fatalf("api calls %d != discovered %d", st.APICalls, st.Discovered)
	}
}

func TestCrawlDeterministic(t *testing.T) {
	g, store, owner := world(t)
	a, _ := New(g, store, owner, DefaultConfig())
	b, _ := New(g, store, owner, DefaultConfig())
	for i := 0; i < 30; i++ {
		ra, rb := a.Tick(), b.Tick()
		if ra != rb {
			t.Fatalf("tick %d diverged: %+v vs %+v", i, ra, rb)
		}
	}
	da, db := a.Discovered(), b.Discovered()
	for i := range da {
		if da[i] != db[i] {
			t.Fatal("discovery order diverged")
		}
	}
}

func TestFailureConfigValidation(t *testing.T) {
	g, store, owner := world(t)
	bad := DefaultConfig()
	bad.FailureProb = 1.5
	if _, err := New(g, store, owner, bad); err == nil {
		t.Fatal("FailureProb > 1 accepted")
	}
	bad = DefaultConfig()
	bad.FailureProb = -0.1
	if _, err := New(g, store, owner, bad); err == nil {
		t.Fatal("negative FailureProb accepted")
	}
	bad = DefaultConfig()
	bad.RetryBudgetPerTick = -1
	if _, err := New(g, store, owner, bad); err == nil {
		t.Fatal("negative RetryBudgetPerTick accepted")
	}
}

func TestTransientFailuresSlowButDontStop(t *testing.T) {
	g, store, owner := world(t)
	cfg := Config{InteractionsPerTick: 100, APIBudgetPerTick: 50, Seed: 2,
		FailureProb: 0.3, RetryBudgetPerTick: 10}
	c, err := New(g, store, owner, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.RunUntil(len(g.Strangers(owner)), 5000)
	st := c.Stats()
	if st.Coverage < 0.99 {
		t.Fatalf("coverage %.2f under 30%% flakiness, want ≈ 1", st.Coverage)
	}
	if st.Failures == 0 {
		t.Fatal("no failures recorded at FailureProb 0.3")
	}
	// Every failure consumed an API call that resolved nothing.
	if st.APICalls != st.Discovered+st.Failures {
		t.Fatalf("api calls %d != discovered %d + failures %d",
			st.APICalls, st.Discovered, st.Failures)
	}
}

func TestFailuresAreDeterministic(t *testing.T) {
	g, store, owner := world(t)
	cfg := DefaultConfig()
	cfg.FailureProb = 0.4
	cfg.RetryBudgetPerTick = 3
	a, _ := New(g, store, owner, cfg)
	b, _ := New(g, store, owner, cfg)
	for i := 0; i < 40; i++ {
		ra, rb := a.Tick(), b.Tick()
		if ra != rb {
			t.Fatalf("tick %d diverged: %+v vs %+v", i, ra, rb)
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
}

func TestRetryBudgetBoundsTickAttempts(t *testing.T) {
	g, store, owner := world(t)
	cfg := Config{InteractionsPerTick: 100, APIBudgetPerTick: 4, Seed: 3,
		FailureProb: 1, RetryBudgetPerTick: 2}
	c, err := New(g, store, owner, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sawFullTick := false
	for i := 0; i < 10; i++ {
		rep := c.Tick()
		if rep.Resolved != 0 {
			t.Fatalf("tick %d resolved %d with FailureProb 1", i, rep.Resolved)
		}
		limit := cfg.APIBudgetPerTick + cfg.RetryBudgetPerTick
		if rep.Failed > limit {
			t.Fatalf("tick %d made %d attempts, budget+retries is %d", i, rep.Failed, limit)
		}
		if rep.PendingLen > 0 && rep.Failed == limit {
			sawFullTick = true
		}
		if rep.Retried > cfg.RetryBudgetPerTick {
			t.Fatalf("tick %d retried %d > retry budget %d", i, rep.Retried, cfg.RetryBudgetPerTick)
		}
	}
	if !sawFullTick {
		t.Fatal("never exhausted budget + retries despite guaranteed failures")
	}
	if len(c.Discovered()) != 0 {
		t.Fatal("strangers resolved despite FailureProb 1")
	}
}
