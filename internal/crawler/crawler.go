// Package crawler simulates the paper's "Sight" Facebook application
// (Section IV-A). Sight could not download the social graph in one
// shot: Facebook's API only revealed friends-of-friends through
// observed interactions (tags, posts), after which the app queried the
// new stranger's mutual friends and profile under strict rate limits —
// learning "a big portion of the social graph (4,000 strangers)" took
// up to a week, and two months yielded ~30,000 strangers.
//
// The simulator reproduces those dynamics against a hidden
// ground-truth graph: interactions surface undiscovered strangers into
// a pending queue, and a per-tick API budget drains the queue into the
// crawler's known graph. The known graph grows exactly the way the
// paper's did, which is what motivates selecting active-learning
// training sets on the fly instead of fixing them up front.
package crawler

import (
	"fmt"
	"math/rand"

	"sightrisk/internal/delta"
	"sightrisk/internal/graph"
	"sightrisk/internal/profile"
)

// Config tunes the crawl dynamics.
type Config struct {
	// InteractionsPerTick is how many friend interactions the app
	// observes per tick (each may surface an undiscovered stranger).
	InteractionsPerTick int
	// APIBudgetPerTick caps how many pending strangers can be fully
	// queried (mutual friends + profile) per tick.
	APIBudgetPerTick int
	// FailureProb is the per-query probability in [0,1] that an API
	// resolve call fails transiently — the rate-limit / flaky-endpoint
	// weather the paper's app crawled through for weeks. A failed
	// stranger stays at the head of the queue; the failed attempt
	// still consumes API budget.
	FailureProb float64
	// RetryBudgetPerTick caps how many failed resolve attempts may be
	// retried within the same tick (on top of the regular budget).
	// 0 means failures wait for the next tick.
	RetryBudgetPerTick int
	// Seed drives interaction sampling and failure draws.
	Seed int64
}

// DefaultConfig observes 20 interactions and resolves up to 5
// strangers per tick — with one tick per hour this lands near the
// paper's "one week for 4,000 strangers" pace.
func DefaultConfig() Config {
	return Config{InteractionsPerTick: 20, APIBudgetPerTick: 5, Seed: 1}
}

// TickReport summarizes one tick.
type TickReport struct {
	Tick       int
	Observed   int // interactions observed
	Surfaced   int // previously unseen strangers queued
	Resolved   int // strangers fully queried this tick
	Failed     int // resolve attempts that failed transiently
	Retried    int // failed attempts retried within this tick
	PendingLen int // queue length after the tick
}

// Crawler incrementally discovers an owner's two-hop neighborhood.
type Crawler struct {
	truth        *graph.Graph
	truthProfile *profile.Store
	owner        graph.UserID

	cfg Config
	rng *rand.Rand

	known        *graph.Graph
	knownProfile *profile.Store
	friends      []graph.UserID
	seen         map[graph.UserID]bool // queued or resolved strangers
	pending      []graph.UserID
	discovered   []graph.UserID
	updates      delta.Batch
	ticks        int
	apiCalls     int
	failures     int
}

// New prepares a crawl of owner's neighborhood over the hidden truth
// graph. The crawler starts knowing the owner, their friend list and
// the friendships among those friends (all visible to the app at
// install time), plus every friend's profile.
func New(truth *graph.Graph, truthProfiles *profile.Store, owner graph.UserID, cfg Config) (*Crawler, error) {
	if truth == nil || truthProfiles == nil {
		return nil, fmt.Errorf("crawler: truth graph and profiles must not be nil")
	}
	if !truth.HasNode(owner) {
		return nil, fmt.Errorf("crawler: owner %d not in graph", owner)
	}
	if cfg.InteractionsPerTick < 1 {
		return nil, fmt.Errorf("crawler: InteractionsPerTick must be >= 1, got %d", cfg.InteractionsPerTick)
	}
	if cfg.APIBudgetPerTick < 1 {
		return nil, fmt.Errorf("crawler: APIBudgetPerTick must be >= 1, got %d", cfg.APIBudgetPerTick)
	}
	if cfg.FailureProb < 0 || cfg.FailureProb > 1 {
		return nil, fmt.Errorf("crawler: FailureProb must be in [0,1], got %g", cfg.FailureProb)
	}
	if cfg.RetryBudgetPerTick < 0 {
		return nil, fmt.Errorf("crawler: RetryBudgetPerTick must be >= 0, got %d", cfg.RetryBudgetPerTick)
	}
	c := &Crawler{
		truth:        truth,
		truthProfile: truthProfiles,
		owner:        owner,
		cfg:          cfg,
		rng:          rand.New(rand.NewSource(cfg.Seed)),
		known:        graph.New(),
		knownProfile: profile.NewStore(),
		seen:         make(map[graph.UserID]bool),
	}
	c.known.AddNode(owner)
	if p := truthProfiles.Get(owner); p != nil {
		c.knownProfile.Put(p)
	}
	c.friends = truth.Friends(owner)
	for _, f := range c.friends {
		if err := c.known.AddEdge(owner, f); err != nil {
			return nil, err
		}
		if p := truthProfiles.Get(f); p != nil {
			c.knownProfile.Put(p)
		}
	}
	// Friend-list cross edges are visible at install time.
	for i, a := range c.friends {
		for _, b := range c.friends[i+1:] {
			if truth.HasEdge(a, b) {
				if err := c.known.AddEdge(a, b); err != nil {
					return nil, err
				}
			}
		}
	}
	return c, nil
}

// Tick advances the crawl by one time step.
func (c *Crawler) Tick() TickReport {
	c.ticks++
	rep := TickReport{Tick: c.ticks}
	if len(c.friends) > 0 {
		for i := 0; i < c.cfg.InteractionsPerTick; i++ {
			rep.Observed++
			f := c.friends[c.rng.Intn(len(c.friends))]
			neigh := c.truth.Friends(f)
			if len(neigh) == 0 {
				continue
			}
			n := neigh[c.rng.Intn(len(neigh))]
			if n == c.owner || c.known.HasEdge(c.owner, n) || c.seen[n] {
				continue
			}
			c.seen[n] = true
			c.pending = append(c.pending, n)
			rep.Surfaced++
		}
	}
	retries := c.cfg.RetryBudgetPerTick
	for i := 0; i < c.cfg.APIBudgetPerTick && len(c.pending) > 0; i++ {
		s := c.pending[0]
		c.apiCalls++
		if c.cfg.FailureProb > 0 && c.rng.Float64() < c.cfg.FailureProb {
			// Transient API failure: the stranger stays queued. Spend a
			// retry if the tick still has retry budget, otherwise the
			// attempt is gone and the stranger waits for the next tick.
			rep.Failed++
			c.failures++
			if retries > 0 {
				retries--
				rep.Retried++
				i--
			}
			continue
		}
		c.pending = c.pending[1:]
		c.resolve(s)
		rep.Resolved++
	}
	rep.PendingLen = len(c.pending)
	return rep
}

// resolve performs the "query Facebook for its mutual friends/profile
// information" step for one surfaced stranger. Each resolution is also
// recorded as delta.Update records (drained via Updates), so a
// downstream estimator can revise a standing report incrementally
// instead of recomputing from the whole known graph.
func (c *Crawler) resolve(s graph.UserID) {
	c.known.AddNode(s)
	c.updates = append(c.updates, delta.Update{Kind: delta.NodeAdd, A: s})
	for _, m := range c.truth.MutualFriends(c.owner, s) {
		// Mutual friends are by construction already known (they are
		// the owner's friends); record the stranger edge.
		_ = c.known.AddEdge(s, m)
		c.updates = append(c.updates, delta.Update{Kind: delta.EdgeAdd, A: s, B: m})
	}
	if p := c.truthProfile.Get(s); p != nil {
		c.knownProfile.Put(p)
		// Attributes and items are emitted in the registry order, which
		// is fixed, so replaying a crawl yields the same update stream.
		for _, a := range profile.AllAttributes() {
			if v := p.Attr(a); v != "" {
				c.updates = append(c.updates, delta.Update{Kind: delta.ProfileSet, A: s, Attr: string(a), Value: v})
			}
		}
		for _, it := range profile.Items() {
			if p.IsVisible(it) {
				c.updates = append(c.updates, delta.Update{Kind: delta.VisibilitySet, A: s, Attr: string(it), Visible: true})
			}
		}
	}
	c.discovered = append(c.discovered, s)
}

// Updates drains the update records accumulated since the last drain
// (or since New), in emission order. The records describe exactly the
// mutations resolve applied to the known graph and profile store:
// replaying the drained batches, in order, onto a copy of the install-
// time view reproduces Known. A tick that resolves no strangers drains
// an empty batch.
func (c *Crawler) Updates() delta.Batch {
	u := c.updates
	c.updates = nil
	return u
}

// RunUntil ticks until at least target strangers are discovered or
// maxTicks elapse; it returns the number of ticks consumed in this
// call.
func (c *Crawler) RunUntil(target, maxTicks int) int {
	used := 0
	for used < maxTicks && len(c.discovered) < target {
		c.Tick()
		used++
	}
	return used
}

// Known returns the crawler's current view: the known graph and
// profiles. Callers must not mutate them mid-crawl.
func (c *Crawler) Known() (*graph.Graph, *profile.Store) {
	return c.known, c.knownProfile
}

// Discovered returns the strangers resolved so far, in discovery
// order.
func (c *Crawler) Discovered() []graph.UserID {
	return append([]graph.UserID(nil), c.discovered...)
}

// Stats summarizes crawl progress.
type Stats struct {
	Ticks      int
	Discovered int
	Pending    int
	APICalls   int
	Failures   int     // transient API failures encountered
	Coverage   float64 // discovered / true stranger count
}

// Stats returns the current crawl statistics.
func (c *Crawler) Stats() Stats {
	trueStrangers := len(c.truth.Strangers(c.owner))
	st := Stats{
		Ticks:      c.ticks,
		Discovered: len(c.discovered),
		Pending:    len(c.pending),
		APICalls:   c.apiCalls,
		Failures:   c.failures,
	}
	if trueStrangers > 0 {
		st.Coverage = float64(st.Discovered) / float64(trueStrangers)
	}
	return st
}
