package crawler

import (
	"context"
	"testing"

	"sightrisk/internal/active"
	"sightrisk/internal/core"
	"sightrisk/internal/delta"
	"sightrisk/internal/graph"
	"sightrisk/internal/synthetic"
)

func deltaWorld(t *testing.T) (*synthetic.Study, *synthetic.Owner) {
	t.Helper()
	cfg := synthetic.SmallStudyConfig()
	cfg.Owners = 1
	cfg.Ego.Strangers = 150
	cfg.Ego.Friends = 30
	cfg.Seed = 5
	study, err := synthetic.GenerateStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return study, study.Owners[0]
}

// TestUpdatesReplayReproducesKnown: the drained update stream is a
// complete, ordered record of the crawl — applying it to a second
// crawler's install-time view reproduces the first crawler's known
// graph and profiles exactly.
func TestUpdatesReplayReproducesKnown(t *testing.T) {
	study, o := deltaWorld(t)
	mk := func() *Crawler {
		c, err := New(study.Graph, study.Profiles, o.ID, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	crawled, replica := mk(), mk()
	if got := crawled.Updates(); len(got) != 0 {
		t.Fatalf("install-time view already carries %d updates", len(got))
	}

	var stream delta.Batch
	for i := 0; i < 10; i++ {
		crawled.Tick()
		b := crawled.Updates()
		if err := b.Validate(); err != nil {
			t.Fatalf("tick %d emitted invalid batch: %v", i+1, err)
		}
		stream = append(stream, b...)
	}
	if len(crawled.Discovered()) == 0 {
		t.Fatal("crawl discovered nothing; test world too small")
	}
	if len(crawled.Updates()) != 0 {
		t.Fatal("drain is not destructive")
	}

	rg, rp := replica.Known() // replica never ticks; safe to mutate
	if err := stream.Apply(rg, rp); err != nil {
		t.Fatal(err)
	}
	kg, kp := crawled.Known()
	if rg.NumNodes() != kg.NumNodes() || rg.NumEdges() != kg.NumEdges() {
		t.Fatalf("replayed view has %d nodes / %d edges, crawled has %d / %d",
			rg.NumNodes(), rg.NumEdges(), kg.NumNodes(), kg.NumEdges())
	}
	for _, n := range kg.Nodes() {
		if !rg.HasNode(n) {
			t.Fatalf("node %d missing after replay", n)
		}
		for _, f := range kg.Friends(n) {
			if !rg.HasEdge(n, f) {
				t.Fatalf("edge %d-%d missing after replay", n, f)
			}
		}
	}
	for _, s := range crawled.Discovered() {
		want, got := kp.Get(s), rp.Get(s)
		if want == nil {
			continue
		}
		if got == nil {
			t.Fatalf("profile %d missing after replay", s)
		}
		for a, v := range want.Attrs {
			if got.Attr(a) != v {
				t.Fatalf("profile %d attr %q = %q after replay, want %q", s, a, got.Attr(a), v)
			}
		}
		for it, vis := range want.Visible {
			if got.IsVisible(it) != vis {
				t.Fatalf("profile %d item %q visibility diverged after replay", s, it)
			}
		}
	}
}

// TestQuietTickIsReportNoOp is the satellite invariant: a tick whose
// discoveries touch nothing (here: the crawl is already exhaustive, so
// the tick resolves no one) drains an empty batch, the dirty set for
// the owner is empty, and revising the standing report against that
// batch serves the prior run untouched — same pointer, zero pipeline
// work, byte-identical report.
func TestQuietTickIsReportNoOp(t *testing.T) {
	study, o := deltaWorld(t)
	c, err := New(study.Graph, study.Profiles, o.ID, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	total := len(study.Graph.Strangers(o.ID))
	c.RunUntil(total, 10000)
	if len(c.Discovered()) != total {
		t.Fatalf("crawl incomplete: %d/%d", len(c.Discovered()), total)
	}
	c.Updates() // drain the discovery backlog

	known, knownProfiles := c.Known()
	ecfg := core.DefaultConfig()
	prior, err := core.New(ecfg).RunOwner(context.Background(), known, knownProfiles, o.ID, active.Infallible(o), o.Confidence)
	if err != nil {
		t.Fatal(err)
	}

	c.Tick()
	batch := c.Updates()
	if len(batch) != 0 {
		t.Fatalf("exhausted crawl still emitted %d updates", len(batch))
	}
	if dirty := delta.DirtyOwners(known, []graph.UserID{o.ID}, batch); len(dirty) != 0 {
		t.Fatalf("empty batch produced dirty owners %v", dirty)
	}

	revised, st, err := delta.Revise(context.Background(), ecfg, known, knownProfiles, o.ID, active.Infallible(o), o.Confidence, prior, batch)
	if err != nil {
		t.Fatal(err)
	}
	if revised != prior {
		t.Fatal("quiet tick did not serve the prior report")
	}
	if st.Affected || st.PoolsRerun != 0 || st.PoolsReused != len(prior.Pools) {
		t.Fatalf("quiet-tick stats %+v", st)
	}
	if d := core.DiffRuns(prior, revised); d != "" {
		t.Fatalf("quiet tick changed the report: %s", d)
	}
}
