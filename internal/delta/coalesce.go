package delta

import "fmt"

// coalesceKey collapses an update to the state cell it writes: the
// (unordered) edge for EdgeAdd/EdgeRemove, the (user, attribute) cell
// for ProfileSet, the (owner, item) bit for VisibilitySet, and the
// node for NodeAdd. Updates sharing a key overwrite each other, so
// only the last one matters.
func coalesceKey(u Update) string {
	switch u.Kind {
	case EdgeAdd, EdgeRemove:
		a, b := u.A, u.B
		if b < a {
			a, b = b, a
		}
		return fmt.Sprintf("e|%d|%d", a, b)
	case ProfileSet:
		return fmt.Sprintf("p|%d|%s", u.A, u.Attr)
	case VisibilitySet:
		return fmt.Sprintf("v|%d|%s", u.A, u.Attr)
	case NodeAdd:
		return fmt.Sprintf("n|%d", u.A)
	default:
		return fmt.Sprintf("?|%s|%d|%d|%s", u.Kind, u.A, u.B, u.Attr)
	}
}

// Coalesce merges a sequence of batches — e.g. every tick's worth of
// crawler feed that arrived while an apply was in flight — into one
// batch equivalent to applying them back to back. Each update is a
// state write, not an increment, so when several updates target the
// same cell (the same edge, the same profile attribute, the same
// visibility bit) only the last write survives; relative order of the
// surviving updates is preserved. Applying the coalesced batch once
// therefore leaves the graph and store exactly as the original
// sequence would, while costing a single generation bump and a single
// dirty-owner invalidation.
func Coalesce(batches []Batch) Batch {
	n := 0
	for _, b := range batches {
		n += len(b)
	}
	if n == 0 {
		return nil
	}
	last := make(map[string]int, n)
	i := 0
	for _, b := range batches {
		for _, u := range b {
			last[coalesceKey(u)] = i
			i++
		}
	}
	out := make(Batch, 0, len(last))
	i = 0
	for _, b := range batches {
		for _, u := range b {
			if last[coalesceKey(u)] == i {
				out = append(out, u)
			}
			i++
		}
	}
	return out
}
