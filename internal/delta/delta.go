// Package delta implements incremental re-estimation for dynamic
// graphs: typed graph/profile update records (the paper's "crawl never
// finishes" motivation), a conservative dirty-set computation that
// decides which owners a batch of updates can possibly affect, and a
// revision driver that re-runs only the NPP pools a batch touched
// while splicing every untouched pool's prior result verbatim (via
// core.Config.Reuse and the content-keyed cluster.PoolKey).
//
// The standing invariant: a revised run is byte-identical to a full
// recompute against the updated graph, for any worker count — reuse
// only ever skips work whose inputs are provably unchanged, and the
// dirty pre-filter only ever skips runs no update could have reached.
package delta

import (
	"fmt"

	"sightrisk/internal/graph"
	"sightrisk/internal/profile"
)

// Kind names one update record type.
type Kind string

// The update kinds a batch may carry.
const (
	// EdgeAdd inserts the undirected friendship edge (A, B), creating
	// either endpoint as needed — this is how a new stranger arrives.
	EdgeAdd Kind = "edge_add"
	// EdgeRemove deletes the edge (A, B) if present.
	EdgeRemove Kind = "edge_remove"
	// NodeAdd inserts the isolated node A if missing. An isolated node
	// is invisible to every owner's 2-hop view until an edge arrives.
	NodeAdd Kind = "node_add"
	// ProfileSet sets profile attribute Attr of user A to Value,
	// creating the profile if missing.
	ProfileSet Kind = "profile_set"
	// VisibilitySet sets benefit item Attr of user A visible or hidden.
	// Visibility feeds the benefit measure B(o,s), not the risk report,
	// so it never dirties an estimate.
	VisibilitySet Kind = "visibility_set"
)

// Update is one graph or profile change record.
type Update struct {
	// Kind selects the record type and which fields below are read.
	Kind Kind `json:"kind"`
	// A is the subject user: an edge endpoint, the added node, or the
	// profile being changed.
	A graph.UserID `json:"a"`
	// B is the second edge endpoint (edge kinds only).
	B graph.UserID `json:"b,omitempty"`
	// Attr is the profile attribute (ProfileSet) or benefit item
	// (VisibilitySet) being changed.
	Attr string `json:"attr,omitempty"`
	// Value is the new attribute value (ProfileSet only).
	Value string `json:"value,omitempty"`
	// Visible is the new visibility (VisibilitySet only).
	Visible bool `json:"visible,omitempty"`
}

// Validate checks one update record for structural validity.
func (u Update) Validate() error {
	switch u.Kind {
	case EdgeAdd, EdgeRemove:
		if u.A == u.B {
			return fmt.Errorf("delta: %s: self loop on user %d", u.Kind, u.A)
		}
	case NodeAdd:
	case ProfileSet:
		if !validAttribute(u.Attr) {
			return fmt.Errorf("delta: profile_set: unknown attribute %q", u.Attr)
		}
	case VisibilitySet:
		if !validItem(u.Attr) {
			return fmt.Errorf("delta: visibility_set: unknown benefit item %q", u.Attr)
		}
	default:
		return fmt.Errorf("delta: unknown update kind %q", u.Kind)
	}
	return nil
}

// validAttribute reports whether name is a known profile attribute.
func validAttribute(name string) bool {
	for _, a := range profile.AllAttributes() {
		if string(a) == name {
			return true
		}
	}
	return false
}

// validItem reports whether name is a known benefit item.
func validItem(name string) bool {
	for _, it := range profile.Items() {
		if string(it) == name {
			return true
		}
	}
	return false
}

// Batch is an ordered sequence of updates, applied atomically from the
// estimator's point of view: callers apply the whole batch, then
// revise.
type Batch []Update

// Validate checks every record, reporting the first invalid one.
func (b Batch) Validate() error {
	for i, u := range b {
		if err := u.Validate(); err != nil {
			return fmt.Errorf("update[%d]: %w", i, err)
		}
	}
	return nil
}

// ApplyCloned applies the batch's graph updates to g in place but
// leaves store untouched, returning a new store that shares every
// unchanged profile and carries deep copies of only the profiles the
// batch touched. This is the serving layer's copy-on-write path:
// in-flight estimates keep reading the old store (and their frozen
// graph snapshot) while new jobs see the post-batch view.
func (b Batch) ApplyCloned(g *graph.Graph, store *profile.Store) (*profile.Store, error) {
	if g == nil || store == nil {
		return nil, fmt.Errorf("delta: ApplyCloned needs a mutable graph and a profile store")
	}
	next := profile.NewStore()
	for _, u := range store.Users() {
		next.Put(store.Get(u))
	}
	cloned := map[graph.UserID]bool{}
	for _, u := range b {
		if u.Kind != ProfileSet && u.Kind != VisibilitySet {
			continue
		}
		if cloned[u.A] {
			continue
		}
		cloned[u.A] = true
		if p := next.Get(u.A); p != nil {
			next.Put(p.Clone())
		}
	}
	if err := b.Apply(g, next); err != nil {
		return nil, err
	}
	return next, nil
}

// Apply applies the batch in order to the mutable graph and profile
// store. Updates are idempotent (re-adding an existing edge or node,
// or re-removing a missing edge, is a no-op), so replaying a batch is
// safe. The batch should be validated first; an invalid record aborts
// mid-batch.
func (b Batch) Apply(g *graph.Graph, store *profile.Store) error {
	if g == nil || store == nil {
		return fmt.Errorf("delta: Apply needs a mutable graph and a profile store")
	}
	for i, u := range b {
		switch u.Kind {
		case EdgeAdd:
			if err := g.AddEdge(u.A, u.B); err != nil {
				return fmt.Errorf("update[%d]: %w", i, err)
			}
		case EdgeRemove:
			g.RemoveEdge(u.A, u.B)
		case NodeAdd:
			g.AddNode(u.A)
		case ProfileSet:
			p := store.Get(u.A)
			if p == nil {
				p = profile.NewProfile(u.A)
				store.Put(p)
			}
			p.SetAttr(profile.Attribute(u.Attr), u.Value)
		case VisibilitySet:
			p := store.Get(u.A)
			if p == nil {
				p = profile.NewProfile(u.A)
				store.Put(p)
			}
			p.SetVisible(profile.Item(u.Attr), u.Visible)
		default:
			return fmt.Errorf("update[%d]: %w", i, u.Validate())
		}
	}
	return nil
}
