package delta

import (
	"context"

	"sightrisk/internal/active"
	"sightrisk/internal/core"
	"sightrisk/internal/graph"
	"sightrisk/internal/profile"
)

// Stats summarizes what one revision actually recomputed.
type Stats struct {
	// Affected reports whether the batch could have changed the owner's
	// report at all; false means the prior run was served untouched
	// without entering the pipeline.
	Affected bool `json:"affected"`
	// PoolsTotal is the pool count of the (possibly revised) run.
	PoolsTotal int `json:"pools_total"`
	// PoolsReused counts pools spliced verbatim from the prior run.
	PoolsReused int `json:"pools_reused"`
	// PoolsRerun counts pools whose sessions actually re-ran.
	PoolsRerun int `json:"pools_rerun"`
}

// StatsOf derives reuse statistics from a finished run's pool flags.
func StatsOf(run *core.OwnerRun) Stats {
	st := Stats{Affected: true, PoolsTotal: len(run.Pools)}
	for _, p := range run.Pools {
		if p.Reused {
			st.PoolsReused++
		} else {
			st.PoolsRerun++
		}
	}
	return st
}

// Revise re-estimates owner's report against the current graph and
// store, reusing as much of prior as the batch left intact. g and
// store must already reflect the batch (Batch.Apply, or the crawler's
// own bookkeeping); the batch itself is used only for the dirty
// pre-filter.
//
// Two levels of skipping apply, both preserving byte-identity with a
// full recompute:
//
//   - owner level: when prior exists, matches cfg's owner and seed,
//     completed fully, and Affected says no update reaches the owner's
//     2-hop view, prior is returned as-is (Stats.Affected false) —
//     the no-op fast path;
//   - pool level: otherwise the pipeline re-runs with cfg.Reuse set to
//     prior, so the engine rebuilds strangers, NSG and pools from the
//     updated graph and re-runs only the pools whose membership or
//     weight content actually changed.
//
// Any cfg.Snapshot is discarded: a frozen view of the pre-update graph
// must not serve post-update structural queries. Passing a nil prior
// degrades to a plain full run.
func Revise(ctx context.Context, cfg core.Config, g *graph.Graph, store *profile.Store, owner graph.UserID, ann active.FallibleAnnotator, confidence float64, prior *core.OwnerRun, batch Batch) (*core.OwnerRun, Stats, error) {
	if prior != nil && prior.Owner == owner && prior.Seed == cfg.Seed && !prior.Partial &&
		!Affected(g, owner, batch) {
		st := Stats{Affected: false, PoolsTotal: len(prior.Pools), PoolsReused: len(prior.Pools)}
		return prior, st, nil
	}
	cfg.Snapshot = nil
	cfg.Reuse = prior
	run, err := core.New(cfg).RunOwner(ctx, g, store, owner, ann, confidence)
	if err != nil {
		return nil, Stats{}, err
	}
	return run, StatsOf(run), nil
}
