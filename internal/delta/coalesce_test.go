package delta

import (
	"reflect"
	"testing"

	"sightrisk/internal/graph"
	"sightrisk/internal/profile"
)

// TestCoalesceLastWriteWins: updates targeting the same state cell
// collapse to the last write, in original relative order.
func TestCoalesceLastWriteWins(t *testing.T) {
	batches := []Batch{
		{
			{Kind: EdgeAdd, A: 1, B: 2},
			{Kind: ProfileSet, A: 3, Attr: string(profile.AttrLocale), Value: "aa"},
		},
		{
			{Kind: EdgeRemove, A: 2, B: 1}, // same unordered edge as EdgeAdd above
			{Kind: ProfileSet, A: 3, Attr: string(profile.AttrLocale), Value: "bb"},
			{Kind: ProfileSet, A: 3, Attr: string(profile.AttrGender), Value: "male"},
		},
		{
			{Kind: VisibilitySet, A: 3, Attr: string(profile.ItemWall), Visible: true},
			{Kind: VisibilitySet, A: 3, Attr: string(profile.ItemWall), Visible: false},
			{Kind: NodeAdd, A: 9},
			{Kind: NodeAdd, A: 9},
		},
	}
	got := Coalesce(batches)
	want := Batch{
		{Kind: EdgeRemove, A: 2, B: 1},
		{Kind: ProfileSet, A: 3, Attr: string(profile.AttrLocale), Value: "bb"},
		{Kind: ProfileSet, A: 3, Attr: string(profile.AttrGender), Value: "male"},
		{Kind: VisibilitySet, A: 3, Attr: string(profile.ItemWall), Visible: false},
		{Kind: NodeAdd, A: 9},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Coalesce = %+v, want %+v", got, want)
	}
	if Coalesce(nil) != nil {
		t.Fatalf("Coalesce(nil) should be nil")
	}
	if Coalesce([]Batch{{}, {}}) != nil {
		t.Fatalf("Coalesce of empty batches should be nil")
	}
}

// TestCoalesceEquivalentToSequential: applying the coalesced batch to
// one copy of a graph/store pair leaves it identical to applying the
// original batches back to back on another copy.
func TestCoalesceEquivalentToSequential(t *testing.T) {
	mk := func() (*graph.Graph, *profile.Store) {
		g := graph.New()
		for id := graph.UserID(1); id <= 4; id++ {
			g.AddNode(id)
		}
		if err := g.AddEdge(1, 2); err != nil {
			t.Fatal(err)
		}
		return g, profile.NewStore()
	}
	batches := []Batch{
		{
			{Kind: EdgeAdd, A: 2, B: 3},
			{Kind: ProfileSet, A: 2, Attr: string(profile.AttrLocale), Value: "xx"},
		},
		{
			{Kind: EdgeRemove, A: 2, B: 3},
			{Kind: EdgeAdd, A: 3, B: 4},
			{Kind: ProfileSet, A: 2, Attr: string(profile.AttrLocale), Value: "yy"},
			{Kind: VisibilitySet, A: 2, Attr: string(profile.ItemPhoto), Visible: true},
		},
	}

	gSeq, sSeq := mk()
	for _, b := range batches {
		if err := b.Apply(gSeq, sSeq); err != nil {
			t.Fatalf("sequential apply: %v", err)
		}
	}
	gOne, sOne := mk()
	if err := Coalesce(batches).Apply(gOne, sOne); err != nil {
		t.Fatalf("coalesced apply: %v", err)
	}

	for id := graph.UserID(1); id <= 4; id++ {
		if a, b := gSeq.Friends(id), gOne.Friends(id); !reflect.DeepEqual(a, b) {
			t.Errorf("friends of %d: sequential %v vs coalesced %v", id, a, b)
		}
	}
	pSeq, pOne := sSeq.Get(2), sOne.Get(2)
	if (pSeq == nil) != (pOne == nil) {
		t.Fatalf("profile presence differs: %v vs %v", pSeq != nil, pOne != nil)
	}
	if v1, v2 := pSeq.Attr(profile.AttrLocale), pOne.Attr(profile.AttrLocale); v1 != v2 {
		t.Errorf("locale: sequential %q vs coalesced %q", v1, v2)
	}
	if v1, v2 := pSeq.IsVisible(profile.ItemPhoto), pOne.IsVisible(profile.ItemPhoto); v1 != v2 {
		t.Errorf("photo visibility: sequential %v vs coalesced %v", v1, v2)
	}
}
