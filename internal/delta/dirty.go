package delta

import (
	"sightrisk/internal/graph"
)

// Affected reports whether the batch can possibly change owner's risk
// report — the owner-level dirty check. It is conservative (never
// returns false for a batch that matters) and cheap: one enumeration
// of the owner's 2-hop view, then a linear scan of the batch.
//
// The rule rests on what the report depends on: the stranger set
// (distance-2 nodes), each stranger's NS score (mutual friends, the
// owner's and the stranger's degrees, density among mutual friends)
// and the strangers' profile attributes. Writing R = {owner} ∪
// friends(owner) ∪ strangers(owner):
//
//   - an edge update with neither endpoint in R cannot change any of
//     those inputs — it cannot create or sever a ≤2-hop path to the
//     owner without an endpoint in R, and it cannot change the degree
//     of the owner, a friend, or a stranger;
//   - a profile update matters only for the owner or a stranger
//     (pools and weights are built over stranger profiles only);
//   - node additions are isolated until an edge arrives, and
//     visibility flips feed benefit scoring, never the report.
//
// The check is sound whether g is the graph before or after the batch
// was applied: a batch that changes the 2-hop view necessarily
// contains an edge update incident to R in both states. Updates are
// scanned with an early return, so a batch whose first record touches
// R costs O(|R|).
func Affected(g *graph.Graph, owner graph.UserID, b Batch) bool {
	if g == nil || len(b) == 0 {
		return false
	}
	var reach map[graph.UserID]bool    // {owner} ∪ friends ∪ strangers
	var profiled map[graph.UserID]bool // {owner} ∪ strangers
	build := func() {
		friends := g.Friends(owner)
		strangers := g.Strangers(owner)
		reach = make(map[graph.UserID]bool, 1+len(friends)+len(strangers))
		profiled = make(map[graph.UserID]bool, 1+len(strangers))
		reach[owner] = true
		profiled[owner] = true
		for _, f := range friends {
			reach[f] = true
		}
		for _, s := range strangers {
			reach[s] = true
			profiled[s] = true
		}
	}
	for _, u := range b {
		switch u.Kind {
		case EdgeAdd, EdgeRemove:
			if reach == nil {
				build()
			}
			if reach[u.A] || reach[u.B] {
				return true
			}
		case ProfileSet:
			if reach == nil {
				build()
			}
			if profiled[u.A] {
				return true
			}
		case NodeAdd, VisibilitySet:
			// Never dirties a report (see the kind docs).
		}
	}
	return false
}

// DirtyOwners filters owners down to those the batch can affect,
// preserving input order. This is the server's fan-out: an update
// batch invalidates only the dirty owners' prior estimates.
func DirtyOwners(g *graph.Graph, owners []graph.UserID, b Batch) []graph.UserID {
	var dirty []graph.UserID
	for _, o := range owners {
		if Affected(g, o, b) {
			dirty = append(dirty, o)
		}
	}
	return dirty
}
