package delta_test

import (
	"context"
	"testing"

	"sightrisk/internal/active"
	"sightrisk/internal/core"
	"sightrisk/internal/delta"
	"sightrisk/internal/graph"
	"sightrisk/internal/profile"
	"sightrisk/internal/synthetic"
)

func TestUpdateValidate(t *testing.T) {
	bad := []delta.Update{
		{Kind: "bogus"},
		{Kind: delta.EdgeAdd, A: 5, B: 5},
		{Kind: delta.EdgeRemove, A: 7, B: 7},
		{Kind: delta.ProfileSet, A: 1, Attr: "shoe size"},
		{Kind: delta.VisibilitySet, A: 1, Attr: "shoe size"},
	}
	for _, u := range bad {
		if err := u.Validate(); err == nil {
			t.Errorf("update %+v: want validation error", u)
		}
	}
	good := delta.Batch{
		{Kind: delta.EdgeAdd, A: 1, B: 2},
		{Kind: delta.EdgeRemove, A: 1, B: 3},
		{Kind: delta.NodeAdd, A: 9},
		{Kind: delta.ProfileSet, A: 2, Attr: string(profile.AttrHometown), Value: "utopia"},
		{Kind: delta.VisibilitySet, A: 2, Attr: string(profile.ItemWall), Visible: true},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid batch rejected: %v", err)
	}
}

func TestBatchApplyIdempotent(t *testing.T) {
	g := graph.New()
	if err := g.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	store := profile.NewStore()
	b := delta.Batch{
		{Kind: delta.NodeAdd, A: 10},
		{Kind: delta.EdgeAdd, A: 2, B: 3},
		{Kind: delta.EdgeRemove, A: 1, B: 2},
		{Kind: delta.ProfileSet, A: 3, Attr: string(profile.AttrGender), Value: "female"},
		{Kind: delta.VisibilitySet, A: 3, Attr: string(profile.ItemPhoto), Visible: true},
	}
	for i := 0; i < 2; i++ { // replay must be a no-op
		if err := b.Apply(g, store); err != nil {
			t.Fatalf("apply #%d: %v", i+1, err)
		}
	}
	if !g.HasNode(10) || !g.HasEdge(2, 3) || g.HasEdge(1, 2) {
		t.Fatalf("graph state wrong after apply: node10=%v e23=%v e12=%v", g.HasNode(10), g.HasEdge(2, 3), g.HasEdge(1, 2))
	}
	if g.NumEdges() != 1 {
		t.Fatalf("edges = %d, want 1", g.NumEdges())
	}
	p := store.Get(3)
	if p == nil || p.Attr(profile.AttrGender) != "female" || !p.IsVisible(profile.ItemPhoto) {
		t.Fatalf("profile state wrong: %+v", p)
	}
}

// dirtyWorld builds a fixed topology for the Affected rules:
// owner 1 — friends 2, 3 — stranger 4 (via 2) — third-hop node 5
// (via 4) — detached pair 6, 7.
func dirtyWorld(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New()
	for _, e := range [][2]graph.UserID{{1, 2}, {1, 3}, {2, 4}, {4, 5}, {6, 7}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestAffectedRules(t *testing.T) {
	g := dirtyWorld(t)
	one := func(u delta.Update) bool { return delta.Affected(g, 1, delta.Batch{u}) }

	cases := []struct {
		name string
		u    delta.Update
		want bool
	}{
		{"edge between detached nodes", delta.Update{Kind: delta.EdgeAdd, A: 6, B: 7}, false},
		{"edge between third-hop nodes", delta.Update{Kind: delta.EdgeAdd, A: 5, B: 6}, false},
		{"edge touching a stranger", delta.Update{Kind: delta.EdgeAdd, A: 4, B: 6}, true},
		{"edge touching a friend", delta.Update{Kind: delta.EdgeAdd, A: 3, B: 6}, true},
		{"edge touching the owner", delta.Update{Kind: delta.EdgeAdd, A: 1, B: 6}, true},
		{"edge removal inside the view", delta.Update{Kind: delta.EdgeRemove, A: 2, B: 4}, true},
		{"edge removal outside the view", delta.Update{Kind: delta.EdgeRemove, A: 6, B: 7}, false},
		{"stranger profile", delta.Update{Kind: delta.ProfileSet, A: 4, Attr: string(profile.AttrLocale), Value: "it_IT"}, true},
		{"owner profile", delta.Update{Kind: delta.ProfileSet, A: 1, Attr: string(profile.AttrLocale), Value: "it_IT"}, true},
		{"friend profile", delta.Update{Kind: delta.ProfileSet, A: 2, Attr: string(profile.AttrLocale), Value: "it_IT"}, false},
		{"third-hop profile", delta.Update{Kind: delta.ProfileSet, A: 5, Attr: string(profile.AttrLocale), Value: "it_IT"}, false},
		{"node add", delta.Update{Kind: delta.NodeAdd, A: 99}, false},
		{"visibility flip on a stranger", delta.Update{Kind: delta.VisibilitySet, A: 4, Attr: string(profile.ItemWall), Visible: true}, false},
	}
	for _, c := range cases {
		if got := one(c.u); got != c.want {
			t.Errorf("%s: Affected = %v, want %v", c.name, got, c.want)
		}
	}

	// Intra-batch cascade: edge(8,9) alone is invisible, but the batch
	// also wires 8 to a friend — the friend-incident record trips the
	// scan regardless of order.
	cascade := delta.Batch{
		{Kind: delta.EdgeAdd, A: 8, B: 9},
		{Kind: delta.EdgeAdd, A: 2, B: 8},
	}
	if !delta.Affected(g, 1, cascade) {
		t.Fatal("cascading batch not detected")
	}

	// Post-apply evaluation stays conservative: after applying
	// edge(3,6), node 6 is a stranger, so the same record still trips.
	post := delta.Batch{{Kind: delta.EdgeAdd, A: 3, B: 6}}
	if err := post.Apply(g, profile.NewStore()); err != nil {
		t.Fatal(err)
	}
	if !delta.Affected(g, 1, post) {
		t.Fatal("post-apply evaluation missed an applied edge")
	}

	if delta.Affected(g, 1, nil) {
		t.Fatal("empty batch affected")
	}
}

func TestDirtyOwners(t *testing.T) {
	g := dirtyWorld(t)
	// Owner 6's world is the detached pair; owner 1's is the chain.
	b := delta.Batch{{Kind: delta.EdgeAdd, A: 7, B: 8}}
	dirty := delta.DirtyOwners(g, []graph.UserID{1, 6}, b)
	if len(dirty) != 1 || dirty[0] != 6 {
		t.Fatalf("dirty = %v, want [6]", dirty)
	}
}

func reviseStudy(t *testing.T) (*synthetic.Study, *synthetic.Owner) {
	t.Helper()
	cfg := synthetic.SmallStudyConfig()
	cfg.Owners = 2
	cfg.Ego.Strangers = 220
	cfg.Seed = 17
	s, err := synthetic.GenerateStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, s.Owners[0]
}

func fullRun(t *testing.T, study *synthetic.Study, o *synthetic.Owner, workers int) *core.OwnerRun {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Workers = workers
	run, err := core.New(cfg).RunOwner(context.Background(), study.Graph, study.Profiles, o.ID, active.Infallible(o), o.Confidence)
	if err != nil {
		t.Fatal(err)
	}
	return run
}

// TestReviseByteIdentical is the tentpole invariant: after a batch of
// graph/profile updates, Revise against the prior run must produce a
// run byte-identical to a from-scratch recompute on the updated graph,
// at every worker count, while actually reusing untouched pools.
func TestReviseByteIdentical(t *testing.T) {
	study, o := reviseStudy(t)
	prior := fullRun(t, study, o, 1)

	// A mixed batch: one stranger's clustering attribute changes, one
	// stranger gains a friend-edge (NS drift), and a brand-new stranger
	// arrives via a friend of the owner.
	strangers := study.Graph.Strangers(o.ID)
	friends := study.Graph.Friends(o.ID)
	newcomer := graph.UserID(900001)
	batch := delta.Batch{
		{Kind: delta.ProfileSet, A: strangers[3], Attr: string(profile.AttrLocale), Value: "xx_XX"},
		{Kind: delta.EdgeAdd, A: strangers[7], B: friends[0]},
		{Kind: delta.NodeAdd, A: newcomer},
		{Kind: delta.EdgeAdd, A: newcomer, B: friends[1]},
		{Kind: delta.ProfileSet, A: newcomer, Attr: string(profile.AttrGender), Value: "female"},
	}
	if err := batch.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := batch.Apply(study.Graph, study.Profiles); err != nil {
		t.Fatal(err)
	}
	if !delta.Affected(study.Graph, o.ID, batch) {
		t.Fatal("batch should be dirty for the owner")
	}

	for _, workers := range []int{1, 2, 4} {
		ref := fullRun(t, study, o, workers)
		cfg := core.DefaultConfig()
		cfg.Workers = workers
		revised, st, err := delta.Revise(context.Background(), cfg, study.Graph, study.Profiles, o.ID, active.Infallible(o), o.Confidence, prior, batch)
		if err != nil {
			t.Fatal(err)
		}
		if d := core.DiffRuns(ref, revised); d != "" {
			t.Fatalf("workers=%d: revised run diverges from full recompute: %s", workers, d)
		}
		if !st.Affected || st.PoolsTotal != len(revised.Pools) || st.PoolsReused+st.PoolsRerun != st.PoolsTotal {
			t.Fatalf("workers=%d: inconsistent stats %+v", workers, st)
		}
		if st.PoolsReused == 0 {
			t.Fatalf("workers=%d: nothing reused — incremental path not exercised (%+v)", workers, st)
		}
		if st.PoolsRerun == 0 {
			t.Fatalf("workers=%d: nothing rerun — the batch should have dirtied pools (%+v)", workers, st)
		}
	}
}

// TestReviseNoOp: a batch outside the owner's 2-hop view serves the
// prior run untouched — same pointer, no pipeline work.
func TestReviseNoOp(t *testing.T) {
	study, o := reviseStudy(t)
	prior := fullRun(t, study, o, 1)

	far1, far2 := graph.UserID(900010), graph.UserID(900011)
	batch := delta.Batch{
		{Kind: delta.NodeAdd, A: far1},
		{Kind: delta.EdgeAdd, A: far1, B: far2},
	}
	if err := batch.Apply(study.Graph, study.Profiles); err != nil {
		t.Fatal(err)
	}
	revised, st, err := delta.Revise(context.Background(), core.DefaultConfig(), study.Graph, study.Profiles, o.ID, active.Infallible(o), o.Confidence, prior, batch)
	if err != nil {
		t.Fatal(err)
	}
	if revised != prior {
		t.Fatal("no-op revision did not serve the prior run")
	}
	if st.Affected || st.PoolsReused != len(prior.Pools) || st.PoolsRerun != 0 {
		t.Fatalf("no-op stats %+v", st)
	}
}

// TestReviseConservativeBatch: a batch that trips the dirty filter but
// changes nothing (removing a nonexistent friend-incident edge) walks
// the full pipeline and reuses every pool, reproducing the prior run
// exactly.
func TestReviseConservativeBatch(t *testing.T) {
	study, o := reviseStudy(t)
	prior := fullRun(t, study, o, 1)
	friends := study.Graph.Friends(o.ID)
	batch := delta.Batch{{Kind: delta.EdgeRemove, A: friends[0], B: 900050}}
	if err := batch.Apply(study.Graph, study.Profiles); err != nil {
		t.Fatal(err)
	}
	revised, st, err := delta.Revise(context.Background(), core.DefaultConfig(), study.Graph, study.Profiles, o.ID, active.Infallible(o), o.Confidence, prior, batch)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Affected {
		t.Fatal("friend-incident removal should be conservatively dirty")
	}
	if st.PoolsRerun != 0 || st.PoolsReused != len(prior.Pools) {
		t.Fatalf("stats %+v, want all pools reused", st)
	}
	if d := core.DiffRuns(prior, revised); d != "" {
		t.Fatalf("all-reused revision diverges from prior: %s", d)
	}
}

// TestReviseSeedMismatchIgnoresPrior: a prior run under a different
// seed must never be spliced (the per-pool RNG streams differ); the
// revision silently degrades to a correct full recompute.
func TestReviseSeedMismatchIgnoresPrior(t *testing.T) {
	study, o := reviseStudy(t)
	prior := fullRun(t, study, o, 1)

	strangers := study.Graph.Strangers(o.ID)
	batch := delta.Batch{{Kind: delta.ProfileSet, A: strangers[0], Attr: string(profile.AttrLocale), Value: "zz_ZZ"}}
	if err := batch.Apply(study.Graph, study.Profiles); err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Seed = 999
	ref, err := core.New(cfg).RunOwner(context.Background(), study.Graph, study.Profiles, o.ID, active.Infallible(o), o.Confidence)
	if err != nil {
		t.Fatal(err)
	}
	revised, st, err := delta.Revise(context.Background(), cfg, study.Graph, study.Profiles, o.ID, active.Infallible(o), o.Confidence, prior, batch)
	if err != nil {
		t.Fatal(err)
	}
	if st.PoolsReused != 0 {
		t.Fatalf("reused %d pools across a seed change", st.PoolsReused)
	}
	if d := core.DiffRuns(ref, revised); d != "" {
		t.Fatalf("seed-mismatch revision diverges from full recompute: %s", d)
	}
}
