package benefit

import (
	"math"
	"testing"

	"sightrisk/internal/profile"
)

func openProfile(items ...profile.Item) *profile.Profile {
	p := profile.NewProfile(1)
	for _, i := range items {
		p.SetVisible(i, true)
	}
	return p
}

func TestScoreFormula(t *testing.T) {
	// B(o,s) = (1/|M|) Σ θi · Vs(i,o) with |M| = 7 items.
	theta := Theta{profile.ItemPhoto: 0.5, profile.ItemWall: 0.3}
	p := openProfile(profile.ItemPhoto) // only photo visible
	if got, want := Score(theta, p), 0.5/7; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Score = %g, want %g", got, want)
	}
	p.SetVisible(profile.ItemWall, true)
	if got, want := Score(theta, p), 0.8/7; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Score = %g, want %g", got, want)
	}
}

func TestScoreInvisibleItemsContributeNothing(t *testing.T) {
	theta := UniformTheta()
	if got := Score(theta, openProfile()); got != 0 {
		t.Fatalf("Score of fully hidden profile = %g, want 0", got)
	}
}

func TestScoreNilInputs(t *testing.T) {
	if Score(nil, openProfile(profile.ItemPhoto)) != 0 {
		t.Fatal("nil theta should score 0")
	}
	if Score(UniformTheta(), nil) != 0 {
		t.Fatal("nil profile should score 0")
	}
}

func TestScoreMonotoneInVisibility(t *testing.T) {
	theta := PaperTheta()
	p := openProfile()
	prev := Score(theta, p)
	for _, item := range profile.Items() {
		p.SetVisible(item, true)
		cur := Score(theta, p)
		if cur <= prev {
			t.Fatalf("revealing %s did not increase benefit (%g -> %g)", item, prev, cur)
		}
		prev = cur
	}
}

func TestPercent(t *testing.T) {
	theta := UniformTheta()
	all := openProfile(profile.Items()...)
	if got := Percent(theta, all); math.Abs(got-100) > 1e-9 {
		t.Fatalf("Percent of fully open profile = %g, want 100", got)
	}
	none := openProfile()
	if got := Percent(theta, none); got != 0 {
		t.Fatalf("Percent of hidden profile = %g, want 0", got)
	}
	if got := Percent(nil, all); got != 0 {
		t.Fatalf("Percent with nil theta = %g, want 0", got)
	}
	if got := Percent(Theta{profile.ItemPhoto: 0}, all); got != 0 {
		t.Fatalf("Percent with zero theta = %g, want 0", got)
	}
}

func TestThetaValidate(t *testing.T) {
	if err := (Theta{profile.ItemPhoto: 0.5}).Validate(); err != nil {
		t.Fatalf("valid theta rejected: %v", err)
	}
	if err := (Theta{profile.ItemPhoto: -0.1}).Validate(); err == nil {
		t.Fatal("negative coefficient accepted")
	}
	if err := (Theta{profile.ItemPhoto: 1.2}).Validate(); err == nil {
		t.Fatal("coefficient > 1 accepted")
	}
	if err := (Theta{profile.ItemPhoto: 0}).Validate(); err == nil {
		t.Fatal("all-zero theta accepted")
	}
	if err := (Theta{}).Validate(); err == nil {
		t.Fatal("empty theta accepted")
	}
}

func TestThetaNormalized(t *testing.T) {
	th := Theta{profile.ItemPhoto: 2, profile.ItemWall: 2}
	n := th.Normalized()
	if n[profile.ItemPhoto] != 0.5 || n[profile.ItemWall] != 0.5 {
		t.Fatalf("normalized = %v", n)
	}
	// Original untouched.
	if th[profile.ItemPhoto] != 2 {
		t.Fatal("Normalized mutated receiver")
	}
	// Zero-sum theta returned unchanged.
	z := Theta{profile.ItemPhoto: 0}.Normalized()
	if z[profile.ItemPhoto] != 0 {
		t.Fatalf("zero-sum normalized = %v", z)
	}
}

func TestThetaItemsOrder(t *testing.T) {
	th := Theta{
		profile.ItemWall:  0.1,
		profile.ItemPhoto: 0.9,
		profile.ItemWork:  0.5,
	}
	items := th.Items()
	want := []profile.Item{profile.ItemPhoto, profile.ItemWork, profile.ItemWall}
	for i := range want {
		if items[i] != want[i] {
			t.Fatalf("Items = %v, want %v", items, want)
		}
	}
}

func TestPaperTheta(t *testing.T) {
	th := PaperTheta()
	if len(th) != 7 {
		t.Fatalf("paper theta has %d items, want 7", len(th))
	}
	if err := th.Validate(); err != nil {
		t.Fatalf("paper theta invalid: %v", err)
	}
	// Table III order: hometown first, work last.
	items := th.Items()
	if items[0] != profile.ItemHometown {
		t.Fatalf("top item = %s, want hometown", items[0])
	}
	if items[6] != profile.ItemWork {
		t.Fatalf("bottom item = %s, want work", items[6])
	}
}

func TestUniformTheta(t *testing.T) {
	th := UniformTheta()
	if len(th) != 7 {
		t.Fatalf("uniform theta has %d items", len(th))
	}
	sum := 0.0
	for _, v := range th {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("uniform theta sums to %g", sum)
	}
}
