// Package benefit implements the paper's benefit measure (Section II):
//
//	B(o,s) = (1/|M|) · Σ_{i∈M} θᵢ · Vₛ(i,o)
//
// where M is the set of benefit items on the stranger's profile, θᵢ is
// the importance the owner assigns to being able to see item i, and
// Vₛ(i,o) is 1 when item i is visible to the owner and 0 otherwise.
package benefit

import (
	"fmt"
	"sort"

	"sightrisk/internal/profile"
)

// Theta is an owner's importance-coefficient vector over benefit
// items. Coefficients live in [0,1]; the paper's measured means sum to
// ≈1 across the seven items (Table III) but no normalization is
// required by the measure itself.
type Theta map[profile.Item]float64

// PaperTheta returns the average owner-given θ weights of the paper's
// Table III. Useful as "system suggested weights" (the paper notes
// that for some items system-suggested weights beat owner-given ones).
func PaperTheta() Theta {
	return Theta{
		profile.ItemHometown: 0.155,
		profile.ItemFriend:   0.149,
		profile.ItemPhoto:    0.147,
		profile.ItemLocation: 0.143,
		profile.ItemEdu:      0.1393,
		profile.ItemWall:     0.1328,
		profile.ItemWork:     0.1321,
	}
}

// UniformTheta returns equal weights 1/|items| over all benefit items.
func UniformTheta() Theta {
	items := profile.Items()
	t := make(Theta, len(items))
	for _, i := range items {
		t[i] = 1 / float64(len(items))
	}
	return t
}

// Validate checks that every coefficient is in [0,1] and that at least
// one item has a positive weight.
func (t Theta) Validate() error {
	positive := false
	for item, v := range t {
		if v < 0 || v > 1 {
			return fmt.Errorf("benefit: theta[%s] = %g outside [0,1]", item, v)
		}
		if v > 0 {
			positive = true
		}
	}
	if !positive {
		return fmt.Errorf("benefit: theta has no positive coefficient")
	}
	return nil
}

// Normalized returns a copy scaled so coefficients sum to 1 (unchanged
// when the sum is 0).
func (t Theta) Normalized() Theta {
	// Sum in sorted key order: float addition is not associative, so a
	// map-order sum would make normalized coefficients differ at the ULP
	// level between runs.
	keys := make([]profile.Item, 0, len(t))
	for k := range t {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	sum := 0.0
	for _, k := range keys {
		sum += t[k]
	}
	out := make(Theta, len(t))
	for k, v := range t {
		if sum > 0 {
			out[k] = v / sum
		} else {
			out[k] = v
		}
	}
	return out
}

// Items returns the items carrying a coefficient, sorted by descending
// weight (ties by name) — the presentation order of Table III.
func (t Theta) Items() []profile.Item {
	out := make([]profile.Item, 0, len(t))
	for i := range t {
		out = append(out, i)
	}
	sort.Slice(out, func(a, b int) bool {
		if t[out[a]] != t[out[b]] {
			return t[out[a]] > t[out[b]]
		}
		return out[a] < out[b]
	})
	return out
}

// Score returns B(o,s) for the stranger's profile under the owner's θ
// vector: the θ-weighted visibility averaged over the stranger's
// benefit items. A nil profile or empty θ yields 0.
func Score(theta Theta, stranger *profile.Profile) float64 {
	if stranger == nil || len(theta) == 0 {
		return 0
	}
	// M is the set of benefit items present on the stranger's profile;
	// in this model every profile carries all seven items.
	items := profile.Items()
	sum := 0.0
	for _, i := range items {
		if stranger.IsVisible(i) {
			sum += theta[i]
		}
	}
	return sum / float64(len(items))
}

// Percent returns the benefit as the 0-100 "y/100" figure shown to
// owners in the paper's labeling question, normalizing by the maximum
// attainable benefit (all items visible) so a fully open profile
// scores 100.
func Percent(theta Theta, stranger *profile.Profile) float64 {
	if stranger == nil || len(theta) == 0 {
		return 0
	}
	max := 0.0
	for _, i := range profile.Items() {
		max += theta[i]
	}
	if max == 0 {
		return 0
	}
	return 100 * Score(theta, stranger) * float64(len(profile.Items())) / max
}
