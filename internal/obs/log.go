package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Log is an in-memory JSONL terminal sink: every observed event is
// stamped (sequence number, timestamp) and appended as one JSON line
// to an internal buffer that can be snapshotted at any time. It backs
// the serving layer's per-job trace download (GET
// /v1/estimates/{id}/trace): the run writes events while HTTP handlers
// concurrently read consistent snapshots.
//
// Unlike Tracer, which streams to an external writer and cannot replay
// what it already wrote, Log retains the encoded bytes; unlike Ring,
// it never evicts. Safe for concurrent use.
type Log struct {
	mu  sync.Mutex
	buf []byte
	seq uint64
	now func() time.Time
}

// NewLog returns an empty log.
func NewLog() *Log { return &Log{now: time.Now} }

// Observe implements Observer. Events that fail to encode (impossible
// for the engine's own events, which hold only plain values) are
// dropped.
func (l *Log) Observe(ev Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	ev.Seq = l.seq
	if ev.Time.IsZero() {
		ev.Time = l.now()
	}
	line, err := json.Marshal(ev)
	if err != nil {
		return
	}
	l.buf = append(l.buf, line...)
	l.buf = append(l.buf, '\n')
}

// Bytes returns a copy of the JSONL encoding of every event observed
// so far (one JSON object per line, in observation order).
func (l *Log) Bytes() []byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]byte, len(l.buf))
	copy(out, l.buf)
	return out
}

// Len returns the number of events observed so far.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return int(l.seq)
}

// WriteTo writes the current JSONL snapshot to w.
func (l *Log) WriteTo(w io.Writer) (int64, error) {
	n, err := w.Write(l.Bytes())
	return int64(n), err
}
