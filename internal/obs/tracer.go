package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// TraceConfig tunes event emission. The zero value is the cheap
// default: events carry counts and measurements but no digests.
type TraceConfig struct {
	// Digests, when true, makes producers attach order-sensitive FNV-64a
	// digests of their intermediates (NSG membership, pool ordering,
	// per-round predictions) to the trace — the determinism auditor's
	// input. Off by default because human-facing traces don't need the
	// extra hashing work.
	Digests bool
}

// Tracer is the JSONL terminal sink: every observed event is stamped
// with a sequence number and timestamp and encoded as one JSON line.
// Safe for concurrent use; events from concurrent producers are
// serialized under one lock, so lines never interleave.
type Tracer struct {
	mu  sync.Mutex
	enc *json.Encoder
	seq uint64
	err error
	now func() time.Time
}

// NewTracer returns a tracer writing JSONL to w.
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{enc: json.NewEncoder(w), now: time.Now}
}

// Observe implements Observer. Encoding errors are sticky: the first
// one is kept (see Err) and later events are dropped rather than
// written to a broken sink.
func (t *Tracer) Observe(ev Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	ev.Seq = t.seq
	if ev.Time.IsZero() {
		ev.Time = t.now()
	}
	if t.err == nil {
		t.err = t.enc.Encode(ev)
	}
}

// Err returns the first write error, or nil.
func (t *Tracer) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Ring is the in-memory terminal sink: a fixed-capacity ring buffer
// keeping the most recent events. Safe for concurrent use.
type Ring struct {
	mu      sync.Mutex
	buf     []Event
	start   int // index of the oldest event
	n       int // events currently held
	seq     uint64
	dropped uint64
	now     func() time.Time
}

// NewRing returns a ring holding up to capacity events (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, capacity), now: time.Now}
}

// Observe implements Observer, evicting the oldest event when full.
func (r *Ring) Observe(ev Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	ev.Seq = r.seq
	if ev.Time.IsZero() {
		ev.Time = r.now()
	}
	if r.n == len(r.buf) {
		r.buf[r.start] = ev
		r.start = (r.start + 1) % len(r.buf)
		r.dropped++
		return
	}
	r.buf[(r.start+r.n)%len(r.buf)] = ev
	r.n++
}

// Events returns the held events oldest-first (a copy).
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, r.n)
	for i := 0; i < r.n; i++ {
		out[i] = r.buf[(r.start+i)%len(r.buf)]
	}
	return out
}

// Dropped returns how many events were evicted to make room.
func (r *Ring) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Len returns the number of events currently held.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}
