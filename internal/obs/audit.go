package obs

import (
	"fmt"
	"sync"
)

// Record is one entry in an Auditor's trail: the canonicalized event
// plus the running hash chain up to and including it. Two runs whose
// chains agree at index i agree on every event up to i — so the first
// index where chains differ is exactly the first divergent event.
type Record struct {
	// Index is the 0-based position in the trail.
	Index int `json:"index"`
	// Event is the canonical event (Seq/Time/Dur zeroed).
	Event Event `json:"event"`
	// Chain is the FNV-64a hash of every canonical event up to here.
	Chain Digest `json:"chain"`
}

// Auditor is the determinism auditor's collecting sink: it
// canonicalizes every event, folds it into a running hash chain and
// keeps the full trail. Run the same pipeline twice with two Auditors
// and hand both trails to FirstDivergence to pinpoint where — pool,
// round, query or stage digest — the two runs first disagreed.
// Safe for concurrent use.
type Auditor struct {
	mu    sync.Mutex
	chain Digest
	trail []Record
}

// NewAuditor returns an empty auditor.
func NewAuditor() *Auditor { return &Auditor{chain: NewDigest()} }

// Observe implements Observer.
func (a *Auditor) Observe(ev Event) {
	ev = ev.Canonical()
	a.mu.Lock()
	defer a.mu.Unlock()
	a.chain = hashEvent(a.chain, ev)
	a.trail = append(a.trail, Record{Index: len(a.trail), Event: ev, Chain: a.chain})
}

// Trail returns the recorded trail (shared slice; read-only).
func (a *Auditor) Trail() []Record {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.trail
}

// Chain returns the running hash over the whole trail so far. Two runs
// are event-identical iff their trail lengths and final chains match.
func (a *Auditor) Chain() Digest {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.chain
}

// hashEvent folds one canonical event into the chain.
func hashEvent(d Digest, ev Event) Digest {
	return d.
		Uint(uint64(ev.Kind)).
		Str(ev.Tenant).
		Int(ev.Owner).
		Str(ev.Pool).
		Int(int64(ev.Round)).
		Int(ev.User).
		Int(int64(ev.Label)).
		Int(int64(ev.N)).
		Float(ev.Value).
		Uint(uint64(ev.Digest)).
		Str(ev.Note)
}

// Divergence describes where two trails first disagree.
type Divergence struct {
	// Index is the 0-based position of the first differing record.
	Index int
	// A and B are the records at Index; one is nil when the shorter
	// trail is a strict prefix of the longer.
	A, B *Record
}

// String renders a one-line human explanation.
func (d Divergence) String() string {
	describe := func(r *Record) string {
		if r == nil {
			return "<trail ended>"
		}
		ev := r.Event
		s := ev.Kind.String()
		if ev.Tenant != "" {
			s += fmt.Sprintf(" tenant=%s", ev.Tenant)
		}
		if ev.Owner != 0 {
			s += fmt.Sprintf(" owner=%d", ev.Owner)
		}
		if ev.Pool != "" {
			s += fmt.Sprintf(" pool=%s", ev.Pool)
		}
		if ev.Round != 0 {
			s += fmt.Sprintf(" round=%d", ev.Round)
		}
		if ev.User != 0 {
			s += fmt.Sprintf(" user=%d label=%d", ev.User, ev.Label)
		}
		if ev.Digest != 0 {
			s += fmt.Sprintf(" digest=%016x", uint64(ev.Digest))
		}
		if ev.Value != 0 {
			s += fmt.Sprintf(" value=%g", ev.Value)
		}
		if ev.N != 0 {
			s += fmt.Sprintf(" n=%d", ev.N)
		}
		if ev.Note != "" {
			s += fmt.Sprintf(" note=%q", ev.Note)
		}
		return s
	}
	return fmt.Sprintf("first divergence at event %d:\n  run A: %s\n  run B: %s",
		d.Index, describe(d.A), describe(d.B))
}

// FirstDivergence compares two trails and returns the first position
// where they disagree (diverged == true), or diverged == false when
// the trails are identical in length and content.
func FirstDivergence(a, b []Record) (Divergence, bool) {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i].Chain != b[i].Chain || a[i].Event != b[i].Event {
			return Divergence{Index: i, A: &a[i], B: &b[i]}, true
		}
	}
	if len(a) != len(b) {
		d := Divergence{Index: n}
		if len(a) > n {
			d.A = &a[n]
		}
		if len(b) > n {
			d.B = &b[n]
		}
		return d, true
	}
	return Divergence{Index: -1}, false
}
