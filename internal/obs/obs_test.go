package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestTracerJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.now = func() time.Time { return time.Unix(42, 0).UTC() }

	in := []Event{
		{Kind: KindRunStart, Owner: 7, N: 400},
		{Kind: KindQuery, Owner: 7, Pool: "nsg01/psg001", Round: 2, User: 1003, Label: 3},
		{Kind: KindRunEnd, Owner: 7, N: 90, Note: "partial"},
	}
	for _, ev := range in {
		tr.Observe(ev)
	}
	if err := tr.Err(); err != nil {
		t.Fatalf("tracer error: %v", err)
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(in) {
		t.Fatalf("got %d JSONL lines, want %d", len(lines), len(in))
	}
	for i, line := range lines {
		var out Event
		if err := json.Unmarshal([]byte(line), &out); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if out.Seq != uint64(i+1) {
			t.Errorf("line %d: seq = %d, want %d", i, out.Seq, i+1)
		}
		if out.Canonical() != in[i].Canonical() {
			t.Errorf("line %d: round-trip mismatch:\n got %+v\nwant %+v", i, out, in[i])
		}
	}
	if !strings.Contains(lines[1], `"kind":"query"`) {
		t.Errorf("kind not serialized as wire name: %s", lines[1])
	}
}

func TestTracerStickyError(t *testing.T) {
	tr := NewTracer(failWriter{})
	tr.Observe(Event{Kind: KindQuery})
	if tr.Err() == nil {
		t.Fatal("expected write error to stick")
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errWrite }

var errWrite = &json.UnsupportedValueError{Str: "boom"}

func TestRingWraparound(t *testing.T) {
	r := NewRing(3)
	for i := 1; i <= 5; i++ {
		r.Observe(Event{Kind: KindQuery, User: int64(i)})
	}
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("ring holds %d events, want 3", len(evs))
	}
	for i, want := range []int64{3, 4, 5} {
		if evs[i].User != want {
			t.Errorf("event %d: user = %d, want %d", i, evs[i].User, want)
		}
	}
	if r.Dropped() != 2 {
		t.Errorf("dropped = %d, want 2", r.Dropped())
	}
	if evs[2].Seq != 5 {
		t.Errorf("last seq = %d, want 5", evs[2].Seq)
	}
}

func TestMultiAndBuffer(t *testing.T) {
	if Multi(nil, nil) != nil {
		t.Error("Multi of nils should be nil")
	}
	r1, r2 := NewRing(8), NewRing(8)
	if got := Multi(nil, r1); got != Observer(r1) {
		t.Error("Multi with one live observer should unwrap it")
	}
	m := Multi(r1, r2)
	m.Observe(Event{Kind: KindQuery, User: 1})
	if r1.Len() != 1 || r2.Len() != 1 {
		t.Fatalf("fan-out failed: %d / %d", r1.Len(), r2.Len())
	}

	var b Buffer
	b.Observe(Event{Kind: KindPoolStart, Pool: "p"})
	b.Observe(Event{Kind: KindPoolEnd, Pool: "p"})
	sink := NewRing(8)
	b.FlushTo(sink)
	if b.Len() != 0 {
		t.Errorf("buffer not emptied: %d", b.Len())
	}
	if sink.Len() != 2 {
		t.Errorf("flushed %d events, want 2", sink.Len())
	}
}

func TestEmitNilAllocs(t *testing.T) {
	allocs := testing.AllocsPerRun(1000, func() {
		Emit(nil, Event{
			Kind:  KindQuery,
			Owner: 7,
			Pool:  "nsg01/psg001",
			Round: 3,
			User:  1234,
			Label: 2,
			Value: 0.25,
		})
	})
	if allocs != 0 {
		t.Fatalf("Emit(nil, ...) allocates %.1f per call, want 0", allocs)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	for _, v := range []int{0, 1, 1, 2, 3, 7, 8, 1 << 20} {
		h.Observe(v)
	}
	snap := h.Snapshot()
	want := map[int]uint64{0: 1, 1: 2, 2: 2, 4: 1, 8: 1, 1 << 15: 1}
	if len(snap) != len(want) {
		t.Fatalf("got %d buckets %+v, want %d", len(snap), snap, len(want))
	}
	for _, b := range snap {
		if want[b.Lo] != b.Count {
			t.Errorf("bucket lo=%d: count %d, want %d", b.Lo, b.Count, want[b.Lo])
		}
		if b.Hi < b.Lo {
			t.Errorf("bucket [%d,%d] inverted", b.Lo, b.Hi)
		}
	}
}

func TestMetricsSnapshotAndJSON(t *testing.T) {
	var m Metrics
	m.Runs.Add(2)
	m.Queries.Add(90)
	m.CacheHits.Add(3)
	m.PoolSizes.Observe(12)
	snap := m.Snapshot()
	if snap.Runs != 2 || snap.Queries != 90 || snap.CacheHits != 3 {
		t.Errorf("snapshot = %+v", snap)
	}
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back MetricsSnapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Queries != 90 || len(back.PoolSizes) != 1 {
		t.Errorf("json round trip = %+v", back)
	}
}

func TestAuditorDetectsDivergence(t *testing.T) {
	shared := []Event{
		{Kind: KindRunStart, Owner: 1, N: 10},
		{Kind: KindQuery, Owner: 1, Round: 1, User: 100, Label: 2},
	}
	a, b := NewAuditor(), NewAuditor()
	for _, ev := range shared {
		a.Observe(ev)
		b.Observe(ev)
	}
	// Sink-assigned fields must not affect the audit.
	a.Observe(Event{Kind: KindRound, Round: 1, Value: 0.5, Seq: 9, Time: time.Now(), Dur: time.Second})
	b.Observe(Event{Kind: KindRound, Round: 1, Value: 0.5})
	if a.Chain() != b.Chain() {
		t.Fatal("chains differ on canonical-equal trails")
	}
	if d, diverged := FirstDivergence(a.Trail(), b.Trail()); diverged {
		t.Fatalf("unexpected divergence: %s", d)
	}

	// A single flipped label must be pinpointed at its exact index.
	a.Observe(Event{Kind: KindQuery, Owner: 1, Round: 2, User: 101, Label: 2})
	b.Observe(Event{Kind: KindQuery, Owner: 1, Round: 2, User: 101, Label: 3})
	a.Observe(Event{Kind: KindRunEnd, Owner: 1})
	b.Observe(Event{Kind: KindRunEnd, Owner: 1})
	d, diverged := FirstDivergence(a.Trail(), b.Trail())
	if !diverged {
		t.Fatal("divergence not detected")
	}
	if d.Index != 3 {
		t.Errorf("divergence at %d, want 3", d.Index)
	}
	if d.A == nil || d.B == nil || d.A.Event.Label != 2 || d.B.Event.Label != 3 {
		t.Errorf("wrong records: %s", d)
	}
	if !strings.Contains(d.String(), "user=101") {
		t.Errorf("description should name the query: %s", d)
	}
}

func TestFirstDivergencePrefix(t *testing.T) {
	a, b := NewAuditor(), NewAuditor()
	a.Observe(Event{Kind: KindRunStart})
	b.Observe(Event{Kind: KindRunStart})
	b.Observe(Event{Kind: KindRunEnd})
	d, diverged := FirstDivergence(a.Trail(), b.Trail())
	if !diverged {
		t.Fatal("length mismatch not detected")
	}
	if d.Index != 1 || d.A != nil || d.B == nil {
		t.Errorf("prefix divergence wrong: %+v", d)
	}
}

func TestDigestOrderSensitive(t *testing.T) {
	d1 := NewDigest().Int(1).Int(2)
	d2 := NewDigest().Int(2).Int(1)
	if d1 == d2 {
		t.Error("digest should be order-sensitive")
	}
	// ULP-level float differences must change the digest.
	f := 0.1 + 0.2
	g := 0.3
	if f == g {
		t.Skip("floats happen to be equal on this platform")
	}
	if NewDigest().Float(f) == NewDigest().Float(g) {
		t.Error("digest should see ULP differences")
	}
	if NewDigest().Str("ab").Str("c") == NewDigest().Str("a").Str("bc") {
		t.Error("string folding must be length-prefixed")
	}
}
