package obs

import (
	"encoding/json"
	"expvar"
	"io"
	"math/bits"
	"sync/atomic"
)

// Metrics accumulates lock-free per-stage counters and histograms for
// the whole pipeline: stranger NS builds, Squeezer passes,
// harmonic-solver iterations, annotator retries, weight-cache
// hits/misses and fleet scheduler decisions. One Metrics value is
// typically shared by every engine (and the fleet) in a process; all
// fields are independent atomics, so concurrent runs update them
// without contention or locks.
//
// The zero value is ready to use. Export a snapshot via Publish
// (expvar) or WriteJSON (riskbench -metrics-out).
type Metrics struct {
	// Runs counts completed RunOwner invocations (including partial
	// runs).
	Runs atomic.Uint64
	// NSBuilds counts per-stranger network-similarity computations.
	NSBuilds atomic.Uint64
	// SqueezerPasses counts Squeezer invocations (one per non-empty NSG
	// group under NPP pooling).
	SqueezerPasses atomic.Uint64
	// PoolsBuilt counts learning pools constructed.
	PoolsBuilt atomic.Uint64
	// Rounds counts completed learning rounds.
	Rounds atomic.Uint64
	// Queries counts owner labels collected.
	Queries atomic.Uint64
	// Retries counts annotator re-attempts after transient failures.
	Retries atomic.Uint64
	// HarmonicSolves counts classifier solves.
	HarmonicSolves atomic.Uint64
	// HarmonicIters sums the solves' Jacobi iteration counts.
	HarmonicIters atomic.Uint64
	// CacheHits counts shared weight-cache hits.
	CacheHits atomic.Uint64
	// CacheMisses counts shared weight-cache misses.
	CacheMisses atomic.Uint64
	// CacheEvictions counts weight-cache entries evicted to honor the
	// entry cap.
	CacheEvictions atomic.Uint64
	// PoolsReused counts pools served from a prior run's result during
	// incremental re-estimation instead of re-running their sessions.
	PoolsReused atomic.Uint64
	// FleetDispatched counts jobs the fleet scheduler dispatched.
	FleetDispatched atomic.Uint64
	// FleetSkipped counts jobs the fleet scheduler skipped over budgets.
	FleetSkipped atomic.Uint64
	// ClusterForwards counts requests proxied to the ring owner.
	ClusterForwards atomic.Uint64
	// ClusterAdoptions counts jobs adopted from the shared store after a
	// membership change (failover resumptions).
	ClusterAdoptions atomic.Uint64
	// ClusterDeaths counts peers this node marked dead.
	ClusterDeaths atomic.Uint64

	// PoolSizes is a power-of-two-bucket histogram of pool membership
	// counts.
	PoolSizes Histogram
	// RoundsPerPool is a histogram of session lengths.
	RoundsPerPool Histogram
	// SolveIters is a histogram of solver iteration counts.
	SolveIters Histogram
}

// histBuckets covers 0, 1, 2-3, 4-7, ... up to >= 2^15 — plenty for
// pool sizes, round counts and solver iterations.
const histBuckets = 17

// Histogram is a lock-free power-of-two-bucket histogram: value v
// lands in bucket bits.Len(v), so bucket b (for b >= 1) covers
// [2^(b-1), 2^b). The zero value is ready to use.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
}

// Observe records one value (negatives count as 0).
func (h *Histogram) Observe(v int) {
	if v < 0 {
		v = 0
	}
	idx := bits.Len(uint(v))
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	h.buckets[idx].Add(1)
}

// Bucket is one non-empty histogram bucket covering [Lo, Hi].
type Bucket struct {
	Lo    int    `json:"lo"`    // lowest value the bucket covers
	Hi    int    `json:"hi"`    // highest value the bucket covers
	Count uint64 `json:"count"` // observations that landed in it
}

// Snapshot returns the non-empty buckets, lowest first.
func (h *Histogram) Snapshot() []Bucket {
	var out []Bucket
	for i := 0; i < histBuckets; i++ {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		lo, hi := 0, 0
		if i > 0 {
			lo = 1 << (i - 1)
			hi = 1<<i - 1
		}
		if i == histBuckets-1 {
			hi = int(^uint(0) >> 1)
		}
		out = append(out, Bucket{Lo: lo, Hi: hi, Count: c})
	}
	return out
}

// MetricsSnapshot is a point-in-time JSON-friendly copy of a Metrics;
// each field mirrors the Metrics counter (or histogram) of the same
// name.
type MetricsSnapshot struct {
	Runs             uint64   `json:"runs"`                      // see Metrics.Runs
	NSBuilds         uint64   `json:"ns_builds"`                 // see Metrics.NSBuilds
	SqueezerPasses   uint64   `json:"squeezer_passes"`           // see Metrics.SqueezerPasses
	PoolsBuilt       uint64   `json:"pools_built"`               // see Metrics.PoolsBuilt
	Rounds           uint64   `json:"rounds"`                    // see Metrics.Rounds
	Queries          uint64   `json:"queries"`                   // see Metrics.Queries
	Retries          uint64   `json:"retries"`                   // see Metrics.Retries
	HarmonicSolves   uint64   `json:"harmonic_solves"`           // see Metrics.HarmonicSolves
	HarmonicIters    uint64   `json:"harmonic_iters"`            // see Metrics.HarmonicIters
	CacheHits        uint64   `json:"cache_hits"`                // see Metrics.CacheHits
	CacheMisses      uint64   `json:"cache_misses"`              // see Metrics.CacheMisses
	CacheEvictions   uint64   `json:"cache_evictions"`           // see Metrics.CacheEvictions
	PoolsReused      uint64   `json:"pools_reused"`              // see Metrics.PoolsReused
	FleetDispatched  uint64   `json:"fleet_dispatched"`          // see Metrics.FleetDispatched
	FleetSkipped     uint64   `json:"fleet_skipped"`             // see Metrics.FleetSkipped
	ClusterForwards  uint64   `json:"cluster_forwards"`          // see Metrics.ClusterForwards
	ClusterAdoptions uint64   `json:"cluster_adoptions"`         // see Metrics.ClusterAdoptions
	ClusterDeaths    uint64   `json:"cluster_deaths"`            // see Metrics.ClusterDeaths
	PoolSizes        []Bucket `json:"pool_sizes,omitempty"`      // see Metrics.PoolSizes
	RoundsPerPool    []Bucket `json:"rounds_per_pool,omitempty"` // see Metrics.RoundsPerPool
	SolveIters       []Bucket `json:"solve_iters,omitempty"`     // see Metrics.SolveIters
}

// Snapshot loads every counter once and returns the copy.
func (m *Metrics) Snapshot() MetricsSnapshot {
	return MetricsSnapshot{
		Runs:             m.Runs.Load(),
		NSBuilds:         m.NSBuilds.Load(),
		SqueezerPasses:   m.SqueezerPasses.Load(),
		PoolsBuilt:       m.PoolsBuilt.Load(),
		Rounds:           m.Rounds.Load(),
		Queries:          m.Queries.Load(),
		Retries:          m.Retries.Load(),
		HarmonicSolves:   m.HarmonicSolves.Load(),
		HarmonicIters:    m.HarmonicIters.Load(),
		CacheHits:        m.CacheHits.Load(),
		CacheMisses:      m.CacheMisses.Load(),
		CacheEvictions:   m.CacheEvictions.Load(),
		PoolsReused:      m.PoolsReused.Load(),
		FleetDispatched:  m.FleetDispatched.Load(),
		FleetSkipped:     m.FleetSkipped.Load(),
		ClusterForwards:  m.ClusterForwards.Load(),
		ClusterAdoptions: m.ClusterAdoptions.Load(),
		ClusterDeaths:    m.ClusterDeaths.Load(),
		PoolSizes:        m.PoolSizes.Snapshot(),
		RoundsPerPool:    m.RoundsPerPool.Snapshot(),
		SolveIters:       m.SolveIters.Snapshot(),
	}
}

// WriteJSON writes an indented snapshot to w.
func (m *Metrics) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m.Snapshot())
}

// Publish registers the metrics under name in the process-wide expvar
// registry, so any embedding server's /debug/vars endpoint exposes
// them. Publishing an already-taken name is a no-op (expvar forbids
// re-registration).
func (m *Metrics) Publish(name string) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return m.Snapshot() }))
}
