package obs

import (
	"encoding/json"
	"expvar"
	"io"
	"math/bits"
	"sync/atomic"
)

// Metrics accumulates lock-free per-stage counters and histograms for
// the whole pipeline: stranger NS builds, Squeezer passes,
// harmonic-solver iterations, annotator retries, weight-cache
// hits/misses and fleet scheduler decisions. One Metrics value is
// typically shared by every engine (and the fleet) in a process; all
// fields are independent atomics, so concurrent runs update them
// without contention or locks.
//
// The zero value is ready to use. Export a snapshot via Publish
// (expvar) or WriteJSON (riskbench -metrics-out).
type Metrics struct {
	// Runs counts completed RunOwner invocations (including partial
	// runs).
	Runs atomic.Uint64
	// NSBuilds counts per-stranger network-similarity computations.
	NSBuilds atomic.Uint64
	// SqueezerPasses counts Squeezer invocations (one per non-empty NSG
	// group under NPP pooling).
	SqueezerPasses atomic.Uint64
	// PoolsBuilt counts learning pools constructed.
	PoolsBuilt atomic.Uint64
	// Rounds counts completed learning rounds.
	Rounds atomic.Uint64
	// Queries counts owner labels collected.
	Queries atomic.Uint64
	// Retries counts annotator re-attempts after transient failures.
	Retries atomic.Uint64
	// HarmonicSolves counts classifier solves; HarmonicIters sums their
	// Jacobi iteration counts.
	HarmonicSolves atomic.Uint64
	HarmonicIters  atomic.Uint64
	// CacheHits / CacheMisses count shared weight-cache lookups.
	CacheHits   atomic.Uint64
	CacheMisses atomic.Uint64
	// FleetDispatched / FleetSkipped count fleet scheduler decisions.
	FleetDispatched atomic.Uint64
	FleetSkipped    atomic.Uint64

	// PoolSizes, RoundsPerPool and SolveIters are power-of-two-bucket
	// histograms of pool membership counts, session lengths and solver
	// iteration counts.
	PoolSizes     Histogram
	RoundsPerPool Histogram
	SolveIters    Histogram
}

// histBuckets covers 0, 1, 2-3, 4-7, ... up to >= 2^15 — plenty for
// pool sizes, round counts and solver iterations.
const histBuckets = 17

// Histogram is a lock-free power-of-two-bucket histogram: value v
// lands in bucket bits.Len(v), so bucket b (for b >= 1) covers
// [2^(b-1), 2^b). The zero value is ready to use.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
}

// Observe records one value (negatives count as 0).
func (h *Histogram) Observe(v int) {
	if v < 0 {
		v = 0
	}
	idx := bits.Len(uint(v))
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	h.buckets[idx].Add(1)
}

// Bucket is one non-empty histogram bucket covering [Lo, Hi].
type Bucket struct {
	Lo    int    `json:"lo"`
	Hi    int    `json:"hi"`
	Count uint64 `json:"count"`
}

// Snapshot returns the non-empty buckets, lowest first.
func (h *Histogram) Snapshot() []Bucket {
	var out []Bucket
	for i := 0; i < histBuckets; i++ {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		lo, hi := 0, 0
		if i > 0 {
			lo = 1 << (i - 1)
			hi = 1<<i - 1
		}
		if i == histBuckets-1 {
			hi = int(^uint(0) >> 1)
		}
		out = append(out, Bucket{Lo: lo, Hi: hi, Count: c})
	}
	return out
}

// MetricsSnapshot is a point-in-time JSON-friendly copy of a Metrics.
type MetricsSnapshot struct {
	Runs            uint64   `json:"runs"`
	NSBuilds        uint64   `json:"ns_builds"`
	SqueezerPasses  uint64   `json:"squeezer_passes"`
	PoolsBuilt      uint64   `json:"pools_built"`
	Rounds          uint64   `json:"rounds"`
	Queries         uint64   `json:"queries"`
	Retries         uint64   `json:"retries"`
	HarmonicSolves  uint64   `json:"harmonic_solves"`
	HarmonicIters   uint64   `json:"harmonic_iters"`
	CacheHits       uint64   `json:"cache_hits"`
	CacheMisses     uint64   `json:"cache_misses"`
	FleetDispatched uint64   `json:"fleet_dispatched"`
	FleetSkipped    uint64   `json:"fleet_skipped"`
	PoolSizes       []Bucket `json:"pool_sizes,omitempty"`
	RoundsPerPool   []Bucket `json:"rounds_per_pool,omitempty"`
	SolveIters      []Bucket `json:"solve_iters,omitempty"`
}

// Snapshot loads every counter once and returns the copy.
func (m *Metrics) Snapshot() MetricsSnapshot {
	return MetricsSnapshot{
		Runs:            m.Runs.Load(),
		NSBuilds:        m.NSBuilds.Load(),
		SqueezerPasses:  m.SqueezerPasses.Load(),
		PoolsBuilt:      m.PoolsBuilt.Load(),
		Rounds:          m.Rounds.Load(),
		Queries:         m.Queries.Load(),
		Retries:         m.Retries.Load(),
		HarmonicSolves:  m.HarmonicSolves.Load(),
		HarmonicIters:   m.HarmonicIters.Load(),
		CacheHits:       m.CacheHits.Load(),
		CacheMisses:     m.CacheMisses.Load(),
		FleetDispatched: m.FleetDispatched.Load(),
		FleetSkipped:    m.FleetSkipped.Load(),
		PoolSizes:       m.PoolSizes.Snapshot(),
		RoundsPerPool:   m.RoundsPerPool.Snapshot(),
		SolveIters:      m.SolveIters.Snapshot(),
	}
}

// WriteJSON writes an indented snapshot to w.
func (m *Metrics) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m.Snapshot())
}

// Publish registers the metrics under name in the process-wide expvar
// registry, so any embedding server's /debug/vars endpoint exposes
// them. Publishing an already-taken name is a no-op (expvar forbids
// re-registration).
func (m *Metrics) Publish(name string) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return m.Snapshot() }))
}
