// Package obs is the engine's zero-dependency observability layer:
// structured run events (Event, Observer), JSONL / in-memory tracers
// (Tracer, Ring), lock-free per-stage counters and histograms
// (Metrics), and a determinism auditor (Auditor) that hashes every
// order-sensitive intermediate and pinpoints the first divergent event
// between two runs.
//
// The package depends only on the standard library and knows nothing
// about graphs, pools or sessions: producers describe themselves
// through the flat Event record, so one Observer hook serves the
// serial engine, the parallel gate path and the multi-tenant fleet
// alike.
//
// Everything is built to cost nothing when unused: hot paths guard
// event construction behind a nil check (see Emit), counters are
// plain atomics, and a nil Observer never allocates (pinned by
// TestEmitNilAllocs).
package obs

import (
	"math"
	"time"
)

// Kind classifies an event within the run hierarchy: owner run → pool
// → round → query, plus the stage-digest and fleet-scheduler records.
type Kind uint8

// Event kinds, in rough emission order within one owner run.
const (
	// KindRunStart opens an owner run (N = stranger count).
	KindRunStart Kind = iota + 1
	// KindNSG digests the network-similarity-group stage (N = non-empty
	// groups; Digest = order-sensitive membership hash).
	KindNSG
	// KindPools digests the pool-construction stage (N = pool count;
	// Digest = order-sensitive hash of pool IDs and members).
	KindPools
	// KindPoolStart opens one pool's learning session (N = pool size).
	KindPoolStart
	// KindPoolWeights records the pool's weight-matrix build or cache
	// fetch (N = pool size, Dur = wall time).
	KindPoolWeights
	// KindQuery records one owner label query (User, Label, Round).
	KindQuery
	// KindRound closes one learning round (N = unstabilized count or -1,
	// Value = validation RMSE or -1, Digest = prediction hash when
	// TraceConfig.Digests is on).
	KindRound
	// KindPoolEnd closes a pool session (N = rounds run, Note = stop
	// reason).
	KindPoolEnd
	// KindRunEnd closes an owner run (N = owner labels spent, Note =
	// "partial" for degraded runs).
	KindRunEnd
	// KindDispatch records a fleet scheduler dispatch decision (N =
	// estimated job cost).
	KindDispatch
	// KindSkip records a fleet job skipped over budget (Note = reason).
	KindSkip
)

var kindNames = map[Kind]string{
	KindRunStart:    "run.start",
	KindNSG:         "nsg",
	KindPools:       "pools",
	KindPoolStart:   "pool.start",
	KindPoolWeights: "pool.weights",
	KindQuery:       "query",
	KindRound:       "round",
	KindPoolEnd:     "pool.end",
	KindRunEnd:      "run.end",
	KindDispatch:    "dispatch",
	KindSkip:        "skip",
}

// String returns the kind's wire name ("query", "pool.start", ...).
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return "unknown"
}

// MarshalJSON writes the kind as its wire name.
func (k Kind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.String() + `"`), nil
}

// UnmarshalJSON parses a wire name back into a Kind (tests round-trip
// JSONL traces through this).
func (k *Kind) UnmarshalJSON(b []byte) error {
	name := string(b)
	if len(name) >= 2 && name[0] == '"' {
		name = name[1 : len(name)-1]
	}
	for kind, s := range kindNames {
		if s == name {
			*k = kind
			return nil
		}
	}
	*k = 0
	return nil
}

// Event is one structured record in a run's trace. It is a flat value
// type on purpose: constructing one allocates nothing, and the unused
// fields of each kind stay zero (and are omitted from JSON).
//
// Seq and Time are stamped by the terminal sink (Tracer, Ring), never
// by producers; Canonical strips them, so two runs' traces compare on
// content alone.
type Event struct {
	// Seq is the sink-assigned 1-based sequence number.
	Seq uint64 `json:"seq,omitempty"`
	// Time is the sink-assigned wall-clock timestamp.
	Time time.Time `json:"time"`
	// Dur is the measured duration for span-like events (pool.weights).
	Dur time.Duration `json:"dur_ns,omitempty"`

	// Kind says what happened (see the Kind* constants).
	Kind Kind `json:"kind"`
	// Tenant attributes the event to a fleet tenant ("" standalone).
	Tenant string `json:"tenant,omitempty"`
	// Owner is the run's owner user id.
	Owner int64 `json:"owner,omitempty"`
	// Pool is the pool id ("nsg01/psg002") for pool-scoped events.
	Pool string `json:"pool,omitempty"`
	// Round is the 1-based learning round for query/round events.
	Round int `json:"round,omitempty"`
	// User is the queried stranger for query events.
	User int64 `json:"user,omitempty"`
	// Label is the owner label returned by a query.
	Label int `json:"label,omitempty"`
	// N is the kind-specific count (see the Kind constants).
	N int `json:"n,omitempty"`
	// Value is the kind-specific measurement (round RMSE; -1 when the
	// round had none — JSON cannot carry NaN).
	Value float64 `json:"value,omitempty"`
	// Digest is the order-sensitive FNV-64a hash of the stage's
	// intermediate state, when digests are enabled.
	Digest Digest `json:"digest,omitempty"`
	// Note carries short free-form context (stop reason, skip reason).
	Note string `json:"note,omitempty"`
}

// Canonical returns the event with the sink-assigned bookkeeping
// (Seq, Time) and timing noise (Dur) zeroed — the representation the
// determinism auditor hashes and compares.
func (e Event) Canonical() Event {
	e.Seq = 0
	e.Time = time.Time{}
	e.Dur = 0
	return e
}

// Observer receives events. Implementations used as terminal sinks
// across goroutines (Tracer, Ring, Auditor) are safe for concurrent
// use; intermediate Buffers are not (they buffer one session's stream).
type Observer interface {
	// Observe receives one event.
	Observe(Event)
}

// Emit forwards ev to o when o is non-nil — the nil-safe guard every
// hot path uses. With a nil observer the call is a branch over a
// stack-built value and performs no allocation.
func Emit(o Observer, ev Event) {
	if o != nil {
		o.Observe(ev)
	}
}

// multi fans events out to several observers in order.
type multi []Observer

func (m multi) Observe(ev Event) {
	for _, o := range m {
		o.Observe(ev)
	}
}

// Multi combines observers into one, dropping nils. It returns nil
// when nothing remains (so the engine's nil fast path still applies)
// and the sole observer unwrapped when only one remains.
func Multi(os ...Observer) Observer {
	kept := make(multi, 0, len(os))
	for _, o := range os {
		if o != nil {
			kept = append(kept, o)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return kept
}

// Buffer accumulates events in order for a later ordered flush. The
// engine's parallel path gives each pool session its own Buffer and
// flushes them in pool order, which is what makes the event stream
// identical at any worker count. Not safe for concurrent use — one
// Buffer belongs to one session goroutine.
type Buffer struct {
	events []Event
}

// Observe implements Observer.
func (b *Buffer) Observe(ev Event) { b.events = append(b.events, ev) }

// Len returns the number of buffered events.
func (b *Buffer) Len() int { return len(b.events) }

// Events returns the buffered events (shared slice; read-only).
func (b *Buffer) Events() []Event { return b.events }

// FlushTo forwards every buffered event to o in order and empties the
// buffer. The caller serializes concurrent flushes (the fleet holds a
// flush lock so each job's events land as one contiguous block).
func (b *Buffer) FlushTo(o Observer) {
	if o == nil {
		b.events = b.events[:0]
		return
	}
	for _, ev := range b.events {
		o.Observe(ev)
	}
	b.events = b.events[:0]
}

// Digest is a running FNV-64a hash over order-sensitive intermediate
// state. The chainable fold methods are allocation-free, so producers
// can hash NSG memberships, pool orders and per-round predictions on
// the hot path without garbage.
type Digest uint64

const (
	fnvOffset64 Digest = 14695981039346656037
	fnvPrime64  Digest = 1099511628211
)

// NewDigest returns the FNV-64a offset basis.
func NewDigest() Digest { return fnvOffset64 }

// Uint folds an unsigned value (little-endian bytes).
func (d Digest) Uint(v uint64) Digest {
	for i := 0; i < 8; i++ {
		d ^= Digest(byte(v >> (8 * i)))
		d *= fnvPrime64
	}
	return d
}

// Int folds a signed value.
func (d Digest) Int(v int64) Digest { return d.Uint(uint64(v)) }

// Float folds a float's exact bit pattern — ULP-level differences
// (the usual symptom of order-dependent float summation) change the
// digest.
func (d Digest) Float(v float64) Digest { return d.Uint(math.Float64bits(v)) }

// Str folds a length-prefixed string.
func (d Digest) Str(s string) Digest {
	d = d.Uint(uint64(len(s)))
	for i := 0; i < len(s); i++ {
		d ^= Digest(s[i])
		d *= fnvPrime64
	}
	return d
}
