// Package label defines the three-valued risk label of the ICDE 2012
// risk paper (Section III-A): rather than a continuous value in [0,1],
// owners pick one of not risky = 1, risky = 2, very risky = 3.
package label

import "fmt"

// Label is an owner risk judgment for a stranger.
type Label int

// The paper's three label values.
const (
	NotRisky  Label = 1
	Risky     Label = 2
	VeryRisky Label = 3
)

// Min and Max bound the label range (Definition 5's Lmin and Lmax).
const (
	Min = NotRisky
	Max = VeryRisky
)

// Valid reports whether l is one of the three defined labels.
func (l Label) Valid() bool { return l >= Min && l <= Max }

// String implements fmt.Stringer.
func (l Label) String() string {
	switch l {
	case NotRisky:
		return "not risky"
	case Risky:
		return "risky"
	case VeryRisky:
		return "very risky"
	default:
		return fmt.Sprintf("Label(%d)", int(l))
	}
}

// All returns the three labels in ascending order.
func All() []Label { return []Label{NotRisky, Risky, VeryRisky} }

// Clamp forces an arbitrary integer into the valid label range.
func Clamp(v int) Label {
	if v < int(Min) {
		return Min
	}
	if v > int(Max) {
		return Max
	}
	return Label(v)
}

// FromScore maps a continuous risk score in [0,1] to a label using
// even thirds. Used by simulated owners and by callers that need to
// discretize continuous risk estimates.
func FromScore(score float64) Label {
	switch {
	case score < 1.0/3:
		return NotRisky
	case score < 2.0/3:
		return Risky
	default:
		return VeryRisky
	}
}
