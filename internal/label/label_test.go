package label

import "testing"

func TestValid(t *testing.T) {
	for _, l := range All() {
		if !l.Valid() {
			t.Fatalf("%v invalid", l)
		}
	}
	for _, l := range []Label{0, 4, -1, 100} {
		if l.Valid() {
			t.Fatalf("Label(%d) valid", int(l))
		}
	}
}

func TestString(t *testing.T) {
	cases := map[Label]string{
		NotRisky:  "not risky",
		Risky:     "risky",
		VeryRisky: "very risky",
		Label(9):  "Label(9)",
	}
	for l, want := range cases {
		if got := l.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(l), got, want)
		}
	}
}

func TestAll(t *testing.T) {
	all := All()
	if len(all) != 3 {
		t.Fatalf("All() = %v", all)
	}
	for i := 1; i < len(all); i++ {
		if all[i] <= all[i-1] {
			t.Fatal("All() not ascending")
		}
	}
	if all[0] != Min || all[2] != Max {
		t.Fatal("All() bounds wrong")
	}
}

func TestClamp(t *testing.T) {
	cases := map[int]Label{
		-5: NotRisky, 0: NotRisky, 1: NotRisky,
		2: Risky, 3: VeryRisky, 4: VeryRisky, 100: VeryRisky,
	}
	for in, want := range cases {
		if got := Clamp(in); got != want {
			t.Errorf("Clamp(%d) = %v, want %v", in, got, want)
		}
	}
}

func TestFromScore(t *testing.T) {
	cases := []struct {
		score float64
		want  Label
	}{
		{0, NotRisky}, {0.32, NotRisky},
		{1.0 / 3, Risky}, {0.5, Risky}, {0.66, Risky},
		{2.0 / 3, VeryRisky}, {0.9, VeryRisky}, {1, VeryRisky},
	}
	for _, tt := range cases {
		if got := FromScore(tt.score); got != tt.want {
			t.Errorf("FromScore(%g) = %v, want %v", tt.score, got, tt.want)
		}
	}
}
