package propagation

import (
	"math/rand"
	"reflect"
	"testing"

	"sightrisk/internal/graph"
)

// randomPropGraph builds a seeded random graph with non-contiguous ids.
func randomPropGraph(seed int64, n, m int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New()
	ids := make([]graph.UserID, n)
	for i := range ids {
		ids[i] = graph.UserID(i*4 + 1)
		g.AddNode(ids[i])
	}
	for k := 0; k < m; k++ {
		a := ids[rng.Intn(n)]
		b := ids[rng.Intn(n)]
		if a != b {
			_ = g.AddEdge(a, b)
		}
	}
	return g
}

// TestMonteCarloSnapshotEquivalence: the snapshot simulation returns
// exactly — bit for bit, including the RNG stream — what the map-based
// simulation returns, across random graphs, owners, hop depths, and
// per-user forwarding.
func TestMonteCarloSnapshotEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		g := randomPropGraph(seed, 50, 220)
		nodes := g.Nodes()
		owner := nodes[int(seed)%len(nodes)]
		targets := append([]graph.UserID{}, nodes...)
		targets = append(targets, 99999) // absent target must report 0

		cfgs := []Config{
			{Forward: 0.3, MaxHops: 2, Rounds: 50, Seed: seed},
			{Forward: 0.7, MaxHops: 4, Rounds: 30, Seed: seed + 7},
			{Forward: 0, MaxHops: 2, Rounds: 10, Seed: seed},
			{
				Forward: 0.3, MaxHops: 3, Rounds: 40, Seed: seed,
				ForwardFunc: func(u graph.UserID) float64 { return float64(u%10) / 10 },
			},
		}
		for ci, cfg := range cfgs {
			want, err := MonteCarloReference(g, owner, targets, cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := MonteCarlo(g, owner, targets, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d cfg %d: snapshot MonteCarlo diverged from map implementation", seed, ci)
			}
			// Reusing one snapshot across calls must not change results.
			s := g.Snapshot()
			got2, err := MonteCarloSnapshot(s, owner, targets, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got2, want) {
				t.Fatalf("seed %d cfg %d: MonteCarloSnapshot diverged", seed, ci)
			}
		}
	}
}

// TestMonteCarloSnapshotMissingOwner mirrors the map path's error.
func TestMonteCarloSnapshotMissingOwner(t *testing.T) {
	g := randomPropGraph(1, 10, 20)
	if _, err := MonteCarloSnapshot(g.Snapshot(), 99999, g.Nodes(), DefaultConfig()); err == nil {
		t.Fatal("expected error for absent owner")
	}
}

// BenchmarkMonteCarlo contrasts the map-based hot loop (g.Friends per
// frontier node per hop per round: one alloc + sort each) against the
// snapshot walk. The snapshot side includes the freeze cost via
// MonteCarlo; the amortized sub-benchmark reuses one snapshot.
func BenchmarkMonteCarlo(b *testing.B) {
	g := randomPropGraph(1, 300, 2400)
	nodes := g.Nodes()
	owner := nodes[0]
	targets := nodes[1:]
	cfg := DefaultConfig()

	b.Run("map", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := MonteCarloReference(g, owner, targets, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("snapshot", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := MonteCarlo(g, owner, targets, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("snapshot-amortized", func(b *testing.B) {
		b.ReportAllocs()
		s := g.Snapshot()
		for i := 0; i < b.N; i++ {
			if _, err := MonteCarloSnapshot(s, owner, targets, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}
