// Package propagation implements the probability-based model of
// unauthorized information propagation of Carminati, Ferrari, Morasca
// & Taibi (CODASPY 2011) — the risk paper's citation [21] and its
// closest intellectual sibling: instead of asking how risky a stranger
// *feels* to the owner, it computes the probability that information
// the owner shares with their friends leaks to that stranger through
// re-sharing along the social graph.
//
// The model: every directed hop (u → v along a friendship edge)
// forwards a piece of information independently with probability p(u),
// the forwarding propensity of u. Information starts at the owner's
// direct friends (they are authorized recipients); the propagation
// risk of a stranger s is the probability at least one copy reaches s
// within a bounded number of hops. Exact inference is #P-hard on
// general graphs, so the package offers:
//
//   - MonteCarlo: simulate R independent propagation worlds and count
//     how often each stranger is reached (the estimator the original
//     paper evaluates), and
//   - PathLowerBound: 1 - Π over mutual friends of (1 - p·p) — the
//     closed-form risk from two-hop paths only, a cheap lower bound
//     that is exact for the stranger ring of an ego network without
//     stranger-stranger edges.
//
// The contrast experiment correlates propagation risk with the risk
// labels: propagation risk is *structural* (it grows with connectivity
// — the opposite of Figure 7's subjective trend), which is exactly why
// the paper argues subjective risk needed its own measure.
package propagation

import (
	"fmt"
	"math/rand"

	"sightrisk/internal/graph"
)

// Config tunes the propagation model.
type Config struct {
	// Forward is the per-hop forwarding probability (uniform across
	// users; the original model allows per-user values — see
	// ForwardFunc).
	Forward float64
	// ForwardFunc, when non-nil, overrides Forward per user.
	ForwardFunc func(graph.UserID) float64
	// MaxHops bounds propagation depth measured from the owner's
	// friends (default 2: friends re-share to their friends).
	MaxHops int
	// Rounds is the Monte Carlo sample count (default 500).
	Rounds int
	// Seed drives the simulation.
	Seed int64
}

// DefaultConfig uses a 30% forwarding propensity, two re-share hops
// and 500 Monte Carlo rounds.
func DefaultConfig() Config {
	return Config{Forward: 0.3, MaxHops: 2, Rounds: 500, Seed: 1}
}

func (c Config) validate() error {
	if c.Forward < 0 || c.Forward > 1 {
		return fmt.Errorf("propagation: Forward must be in [0,1], got %g", c.Forward)
	}
	if c.MaxHops < 1 {
		return fmt.Errorf("propagation: MaxHops must be >= 1, got %d", c.MaxHops)
	}
	if c.Rounds < 1 {
		return fmt.Errorf("propagation: Rounds must be >= 1, got %d", c.Rounds)
	}
	return nil
}

func (c Config) forward(u graph.UserID) float64 {
	if c.ForwardFunc != nil {
		return c.ForwardFunc(u)
	}
	return c.Forward
}

// MonteCarlo estimates, for every target user, the probability that
// information shared by the owner with their friends reaches the
// target through independent per-hop forwarding. The owner and their
// friends are authorized (risk 0 by definition — they received the
// information legitimately); returned values cover the given targets
// only.
//
// The simulation runs on a frozen graph.Snapshot: the hot loop used to
// call g.Friends(u) — an allocation plus a sort — for every frontier
// node in every hop of every one of the (default 500) rounds. The
// snapshot path walks preindexed adjacency rows and flat []bool state
// instead; BenchmarkMonteCarlo guards the allocs/op drop and
// TestMonteCarloSnapshotEquivalence pins the results (and the RNG
// stream) to the map-based implementation bit for bit.
func MonteCarlo(g *graph.Graph, owner graph.UserID, targets []graph.UserID, cfg Config) (map[graph.UserID]float64, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if !g.HasNode(owner) {
		return nil, fmt.Errorf("propagation: owner %d not in graph", owner)
	}
	return MonteCarloSnapshot(g.Snapshot(), owner, targets, cfg)
}

// MonteCarloSnapshot is MonteCarlo over an already-frozen snapshot —
// the entry point for callers that amortize one snapshot across many
// simulations (the fleet scheduler, the contrast experiment's stranger
// sweep).
//
// Results are identical to the map-based simulation on the graph the
// snapshot was taken from: adjacency rows are walked in the same
// ascending order and the RNG is consulted under exactly the same
// conditions, so the two implementations consume the same random
// stream.
func MonteCarloSnapshot(s *graph.Snapshot, owner graph.UserID, targets []graph.UserID, cfg Config) (map[graph.UserID]float64, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	oi, ok := s.IndexOf(owner)
	if !ok {
		return nil, fmt.Errorf("propagation: owner %d not in graph", owner)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := s.NumNodes()
	friends := s.FriendIndexesAt(oi)

	authorized := make([]bool, n)
	authorized[oi] = true
	for _, fi := range friends {
		authorized[fi] = true
	}
	// uniform forwarding lets the hot loop skip the per-user callback
	uniformP := -1.0
	if cfg.ForwardFunc == nil {
		uniformP = cfg.Forward
	}

	hits := make([]int, n)
	reached := make([]bool, n)
	touched := make([]int32, 0, n) // indices set in reached this round
	var frontier, next []int32
	for round := 0; round < cfg.Rounds; round++ {
		for _, ti := range touched {
			reached[ti] = false
		}
		touched = touched[:0]
		frontier = frontier[:0]
		for _, fi := range friends {
			reached[fi] = true
			touched = append(touched, fi)
			frontier = append(frontier, fi)
		}
		for hop := 0; hop < cfg.MaxHops && len(frontier) > 0; hop++ {
			next = next[:0]
			for _, ui := range frontier {
				p := uniformP
				if p < 0 {
					p = cfg.forward(s.IDAt(ui))
				}
				if p <= 0 {
					continue
				}
				for _, vi := range s.FriendIndexesAt(ui) {
					if reached[vi] || vi == oi {
						continue
					}
					if rng.Float64() < p {
						reached[vi] = true
						touched = append(touched, vi)
						next = append(next, vi)
					}
				}
			}
			frontier, next = next, frontier
		}
		for _, ti := range touched {
			if !authorized[ti] {
				hits[ti]++
			}
		}
	}
	out := make(map[graph.UserID]float64, len(targets))
	for _, t := range targets {
		ti, present := s.IndexOf(t)
		if !present || authorized[ti] {
			out[t] = 0
			continue
		}
		out[t] = float64(hits[ti]) / float64(cfg.Rounds)
	}
	return out, nil
}

// MonteCarloReference is the original map-based simulation, kept as
// the oracle for the snapshot-equivalence test and as the baseline
// side of BenchmarkMonteCarlo and the riskbench micro-benchmarks. Use
// MonteCarlo (or MonteCarloSnapshot) in production code.
func MonteCarloReference(g *graph.Graph, owner graph.UserID, targets []graph.UserID, cfg Config) (map[graph.UserID]float64, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if !g.HasNode(owner) {
		return nil, fmt.Errorf("propagation: owner %d not in graph", owner)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	friends := g.Friends(owner)
	authorized := make(map[graph.UserID]bool, len(friends)+1)
	authorized[owner] = true
	for _, f := range friends {
		authorized[f] = true
	}
	targetSet := make(map[graph.UserID]bool, len(targets))
	for _, t := range targets {
		targetSet[t] = true
	}

	hits := make(map[graph.UserID]int, len(targets))
	reached := make(map[graph.UserID]bool)
	var frontier, next []graph.UserID
	for round := 0; round < cfg.Rounds; round++ {
		for k := range reached {
			delete(reached, k)
		}
		frontier = frontier[:0]
		for _, f := range friends {
			reached[f] = true
			frontier = append(frontier, f)
		}
		for hop := 0; hop < cfg.MaxHops && len(frontier) > 0; hop++ {
			next = next[:0]
			for _, u := range frontier {
				p := cfg.forward(u)
				if p <= 0 {
					continue
				}
				for _, v := range g.Friends(u) {
					if reached[v] || v == owner {
						continue
					}
					if rng.Float64() < p {
						reached[v] = true
						next = append(next, v)
					}
				}
			}
			frontier, next = next, frontier
		}
		for u := range reached {
			if targetSet[u] && !authorized[u] {
				hits[u]++
			}
		}
	}
	out := make(map[graph.UserID]float64, len(targets))
	for _, t := range targets {
		if authorized[t] {
			out[t] = 0
			continue
		}
		out[t] = float64(hits[t]) / float64(cfg.Rounds)
	}
	return out, nil
}

// PathLowerBound returns the closed-form leak probability from
// two-hop paths only: information reaches stranger s if at least one
// mutual friend m both receives it (probability 1, m is a direct
// friend) and forwards it to s (probability p(m)):
//
//	risk(s) = 1 - Π_{m ∈ mutual(owner, s)} (1 - p(m))
//
// It lower-bounds MonteCarlo (longer paths only add probability) and
// is exact when MaxHops = 1.
func PathLowerBound(g *graph.Graph, owner graph.UserID, targets []graph.UserID, cfg Config) (map[graph.UserID]float64, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	out := make(map[graph.UserID]float64, len(targets))
	for _, t := range targets {
		if t == owner || g.HasEdge(owner, t) {
			out[t] = 0
			continue
		}
		miss := 1.0
		for _, m := range g.MutualFriends(owner, t) {
			miss *= 1 - cfg.forward(m)
		}
		out[t] = 1 - miss
	}
	return out, nil
}
