package propagation

import (
	"math"
	"testing"

	"sightrisk/internal/graph"
)

// pathWorld: owner 1 — friend 2 — stranger 3 — far stranger 4.
func pathWorld(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New()
	for _, e := range [][2]graph.UserID{{1, 2}, {2, 3}, {3, 4}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestConfigValidation(t *testing.T) {
	g := pathWorld(t)
	bad := []Config{
		{Forward: -0.1, MaxHops: 2, Rounds: 10},
		{Forward: 1.1, MaxHops: 2, Rounds: 10},
		{Forward: 0.5, MaxHops: 0, Rounds: 10},
		{Forward: 0.5, MaxHops: 2, Rounds: 0},
	}
	for i, cfg := range bad {
		if _, err := MonteCarlo(g, 1, nil, cfg); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
	if _, err := MonteCarlo(g, 99, nil, DefaultConfig()); err == nil {
		t.Fatal("unknown owner accepted")
	}
}

func TestMonteCarloPathProbability(t *testing.T) {
	// Owner → friend 2 → stranger 3: single path, one forwarding hop,
	// so P(reach 3) = p exactly (up to sampling error).
	g := pathWorld(t)
	cfg := Config{Forward: 0.3, MaxHops: 1, Rounds: 20000, Seed: 7}
	risk, err := MonteCarlo(g, 1, []graph.UserID{3, 4}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(risk[3]-0.3) > 0.02 {
		t.Fatalf("risk[3] = %g, want ≈ 0.3", risk[3])
	}
	// One hop cannot reach node 4 (two forwards away).
	if risk[4] != 0 {
		t.Fatalf("risk[4] = %g, want 0 with MaxHops=1", risk[4])
	}
}

func TestMonteCarloTwoHops(t *testing.T) {
	// With two hops, node 4 is reached iff both forwards fire: p².
	g := pathWorld(t)
	cfg := Config{Forward: 0.5, MaxHops: 2, Rounds: 20000, Seed: 8}
	risk, err := MonteCarlo(g, 1, []graph.UserID{4}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(risk[4]-0.25) > 0.02 {
		t.Fatalf("risk[4] = %g, want ≈ 0.25", risk[4])
	}
}

func TestMonteCarloAuthorizedAreZero(t *testing.T) {
	g := pathWorld(t)
	risk, err := MonteCarlo(g, 1, []graph.UserID{1, 2}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if risk[1] != 0 || risk[2] != 0 {
		t.Fatalf("owner/friend risk = %g/%g, want 0", risk[1], risk[2])
	}
}

func TestMonteCarloMoreMutualsMoreRisk(t *testing.T) {
	// Stranger 100 shares 1 mutual friend, stranger 200 shares 4: the
	// better-connected stranger has a strictly higher leak risk.
	g := graph.New()
	owner := graph.UserID(1)
	for f := graph.UserID(10); f < 15; f++ {
		if err := g.AddEdge(owner, f); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddEdge(100, 10); err != nil {
		t.Fatal(err)
	}
	for f := graph.UserID(10); f < 14; f++ {
		if err := g.AddEdge(200, f); err != nil {
			t.Fatal(err)
		}
	}
	cfg := Config{Forward: 0.3, MaxHops: 2, Rounds: 5000, Seed: 9}
	risk, err := MonteCarlo(g, owner, []graph.UserID{100, 200}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !(risk[200] > risk[100]) {
		t.Fatalf("risk[200]=%g not above risk[100]=%g", risk[200], risk[100])
	}
}

func TestMonteCarloDeterministic(t *testing.T) {
	g := pathWorld(t)
	cfg := DefaultConfig()
	a, err := MonteCarlo(g, 1, []graph.UserID{3, 4}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MonteCarlo(g, 1, []graph.UserID{3, 4}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("risk[%d] differs between identical runs", k)
		}
	}
}

func TestPathLowerBound(t *testing.T) {
	// Stranger with two mutual friends at p = 0.5: 1 - 0.25 = 0.75.
	g := graph.New()
	for _, e := range [][2]graph.UserID{{1, 10}, {1, 11}, {3, 10}, {3, 11}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	cfg := Config{Forward: 0.5, MaxHops: 1, Rounds: 1}
	lb, err := PathLowerBound(g, 1, []graph.UserID{3, 1, 10}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lb[3]-0.75) > 1e-12 {
		t.Fatalf("bound = %g, want 0.75", lb[3])
	}
	// Owner and direct friends are authorized.
	if lb[1] != 0 || lb[10] != 0 {
		t.Fatalf("authorized bounds = %g/%g", lb[1], lb[10])
	}
}

func TestPathLowerBoundMatchesMonteCarloOneHop(t *testing.T) {
	// With MaxHops = 1 the bound is exact: compare against the
	// simulation on an ego net with several mutual-friend counts.
	g := graph.New()
	owner := graph.UserID(1)
	for f := graph.UserID(10); f < 20; f++ {
		if err := g.AddEdge(owner, f); err != nil {
			t.Fatal(err)
		}
	}
	targets := []graph.UserID{100, 200, 300}
	for i, m := range []int{1, 3, 6} {
		for j := 0; j < m; j++ {
			if err := g.AddEdge(targets[i], graph.UserID(10+j)); err != nil {
				t.Fatal(err)
			}
		}
	}
	cfg := Config{Forward: 0.4, MaxHops: 1, Rounds: 30000, Seed: 3}
	mc, err := MonteCarlo(g, owner, targets, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := PathLowerBound(g, owner, targets, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range targets {
		if math.Abs(mc[s]-lb[s]) > 0.02 {
			t.Fatalf("stranger %d: MC %g vs bound %g", s, mc[s], lb[s])
		}
	}
}

func TestPerUserForwarding(t *testing.T) {
	// Friend 2 never forwards: stranger 3 unreachable.
	g := pathWorld(t)
	cfg := DefaultConfig()
	cfg.ForwardFunc = func(u graph.UserID) float64 {
		if u == 2 {
			return 0
		}
		return 1
	}
	risk, err := MonteCarlo(g, 1, []graph.UserID{3}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if risk[3] != 0 {
		t.Fatalf("risk[3] = %g, want 0 with silent friend", risk[3])
	}
}
