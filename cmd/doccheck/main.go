// Command doccheck enforces godoc coverage: every exported identifier
// in the given package directories — types, funcs, methods, consts,
// vars, struct fields and interface methods — must carry a doc
// comment. A grouped declaration's block comment covers its specs, and
// a trailing line comment counts for fields and single-line specs.
//
//	doccheck [dir ...]    (default: the module's public surface)
//
// It is wired into `make docs` (and through it into tier-1) so the
// public surface cannot silently grow undocumented.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"sort"
	"strings"
)

// defaultDirs is the module's documented surface: the public packages
// plus the serving stack they are built on.
var defaultDirs = []string{
	".", "./client",
	"./internal/advisor", "./internal/delta", "./internal/ldp",
	"./internal/fleet", "./internal/server", "./internal/obs", "./internal/dataset",
	"./internal/graph", "./internal/graph/snapfile", "./internal/synthetic",
	"./internal/place",
}

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: doccheck [dir ...]\ndefault dirs: %s\n", strings.Join(defaultDirs, " "))
	}
	flag.Parse()
	dirs := flag.Args()
	if len(dirs) == 0 {
		dirs = defaultDirs
	}
	total, missing := 0, []string{}
	for _, dir := range dirs {
		n, miss, err := checkDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doccheck:", err)
			os.Exit(2)
		}
		total += n
		missing = append(missing, miss...)
	}
	sort.Strings(missing)
	for _, m := range missing {
		fmt.Println(m)
	}
	if len(missing) > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d of %d exported identifiers undocumented\n", len(missing), total)
		os.Exit(1)
	}
	fmt.Printf("doccheck: %d exported identifiers documented across %s\n", total, strings.Join(dirs, " "))
}

// checkDir parses one directory (tests excluded) and returns the
// number of exported identifiers seen and the undocumented ones.
func checkDir(dir string) (int, []string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return 0, nil, err
	}
	total := 0
	var missing []string
	report := func(pos token.Pos, what, name string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: undocumented %s %s", p.Filename, p.Line, what, name))
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || !exportedReceiver(d) {
						continue
					}
					total++
					if d.Doc == nil {
						kind := "func"
						if d.Recv != nil {
							kind = "method"
						}
						report(d.Name.Pos(), kind, funcName(d))
					}
				case *ast.GenDecl:
					if d.Tok == token.IMPORT {
						continue
					}
					n, miss := checkGenDecl(fset, d)
					total += n
					missing = append(missing, miss...)
				}
			}
		}
	}
	return total, missing, nil
}

// exportedReceiver reports whether a method's receiver type is itself
// exported (methods on unexported types are not public surface).
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return true
		}
	}
}

// funcName renders "Name" or "(Recv).Name" for a report line.
func funcName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	t := d.Recv.List[0].Type
	if s, ok := t.(*ast.StarExpr); ok {
		t = s.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return "(" + id.Name + ")." + d.Name.Name
	}
	return d.Name.Name
}

// checkGenDecl checks a const/var/type declaration: each exported spec
// needs its own doc, the block's doc, or a trailing comment. Exported
// struct fields and interface methods of exported types are checked
// too.
func checkGenDecl(fset *token.FileSet, d *ast.GenDecl) (int, []string) {
	total := 0
	var missing []string
	report := func(pos token.Pos, what, name string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: undocumented %s %s", p.Filename, p.Line, what, name))
	}
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.ValueSpec:
			for _, name := range s.Names {
				if !name.IsExported() {
					continue
				}
				total++
				if d.Doc == nil && s.Doc == nil && s.Comment == nil {
					report(name.Pos(), d.Tok.String(), name.Name)
				}
			}
		case *ast.TypeSpec:
			if !s.Name.IsExported() {
				continue
			}
			total++
			if d.Doc == nil && s.Doc == nil && s.Comment == nil {
				report(s.Name.Pos(), "type", s.Name.Name)
			}
			switch t := s.Type.(type) {
			case *ast.StructType:
				for _, fld := range t.Fields.List {
					for _, name := range fld.Names {
						if !name.IsExported() {
							continue
						}
						total++
						if fld.Doc == nil && fld.Comment == nil {
							report(name.Pos(), "field", s.Name.Name+"."+name.Name)
						}
					}
				}
			case *ast.InterfaceType:
				for _, m := range t.Methods.List {
					for _, name := range m.Names {
						if !name.IsExported() {
							continue
						}
						total++
						if m.Doc == nil && m.Comment == nil {
							report(name.Pos(), "interface method", s.Name.Name+"."+name.Name)
						}
					}
				}
			}
		}
	}
	return total, missing
}
