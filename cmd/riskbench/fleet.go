package main

// Fleet benchmark mode (-tenants N): the multi-tenant scheduler of
// internal/fleet against the status-quo baseline of running the same
// owner jobs one after another. Both sides run identical jobs on
// content-identical studies and their per-owner reports are verified
// byte-identical (core.DiffRuns), so the comparison is pure
// throughput: the fleet amortizes annotator round-trips across owners
// (batched transport) and weight-matrix builds across tenants (shared
// content-keyed cache), while the serial baseline pays both per run.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"sightrisk/internal/active"
	"sightrisk/internal/cluster"
	"sightrisk/internal/core"
	"sightrisk/internal/fleet"
	"sightrisk/internal/graph"
	"sightrisk/internal/label"
	"sightrisk/internal/parallel"
	"sightrisk/internal/profile"
	"sightrisk/internal/propagation"
	"sightrisk/internal/similarity"
	"sightrisk/internal/stats"
	"sightrisk/internal/synthetic"
)

// simTransport answers batched label questions from the tenants' own
// synthetic owners after one simulated network round-trip — the
// annotators-behind-a-service deployment the batcher exists for.
type simTransport struct {
	rtt    time.Duration
	owners map[string]map[graph.UserID]*synthetic.Owner
}

func (t *simTransport) add(tenant string, s *synthetic.Study) {
	m := make(map[graph.UserID]*synthetic.Owner, len(s.Owners))
	for _, o := range s.Owners {
		m[o.ID] = o
	}
	t.owners[tenant] = m
}

func (t *simTransport) LabelBatch(ctx context.Context, qs []fleet.Question) ([]label.Label, error) {
	if t.rtt > 0 {
		select {
		case <-time.After(t.rtt):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	out := make([]label.Label, len(qs))
	for i, q := range qs {
		o := t.owners[q.Tenant][q.Owner]
		if o == nil {
			return nil, fmt.Errorf("unknown owner %d of tenant %q", q.Owner, q.Tenant)
		}
		out[i] = o.LabelStranger(q.Stranger)
	}
	return out, nil
}

// rttAnnotator charges the serial baseline the same round-trip latency
// per question that the fleet's transport charges per batch.
type rttAnnotator struct {
	inner active.FallibleAnnotator
	rtt   time.Duration
}

func (a rttAnnotator) LabelStranger(ctx context.Context, s graph.UserID) (label.Label, error) {
	select {
	case <-time.After(a.rtt):
	case <-ctx.Done():
		return 0, ctx.Err()
	}
	return a.inner.LabelStranger(ctx, s)
}

type microResult struct {
	NsPerOp     int64 `json:"ns_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
}

type fleetSide struct {
	Owners        int     `json:"owners"`
	Queries       int     `json:"queries"`
	ElapsedMillis float64 `json:"elapsed_ms"`
	OwnersPerSec  float64 `json:"owners_per_sec"`
	QueriesPerSec float64 `json:"queries_per_sec"`

	CacheEntries    int     `json:"cache_entries,omitempty"`
	CacheHitRate    float64 `json:"cache_hit_rate,omitempty"`
	BatchRoundTrips int     `json:"batch_round_trips,omitempty"`
	BatchMeanSize   float64 `json:"batch_mean_size,omitempty"`
}

type fleetBenchReport struct {
	Scale           string                 `json:"scale"`
	Seed            int64                  `json:"seed"`
	Tenants         int                    `json:"tenants"`
	OwnersPerTenant int                    `json:"owners_per_tenant"`
	Workers         int                    `json:"workers"`
	RTTMillis       float64                `json:"rtt_ms"`
	Fleet           fleetSide              `json:"fleet"`
	Serial          fleetSide              `json:"serial"`
	Speedup         float64                `json:"speedup_owners_per_sec"`
	Identical       bool                   `json:"identical_reports"`
	Micro           map[string]microResult `json:"micro"`
}

func runFleetBench(scale string, seed int64, nTenants, workers int, rtt time.Duration, outPath string) error {
	cfg, err := studyConfig(scale, seed)
	if err != nil {
		return err
	}
	resolved := parallel.ResolveWorkers(workers)
	fmt.Printf("riskbench: fleet mode — %d tenant replicas of scale=%s seed=%d (cpu workers=%d rtt=%v)\n",
		nTenants, scale, seed, resolved, rtt)

	genStart := time.Now()
	studies := make([]*synthetic.Study, nTenants)
	for i := range studies {
		// Content-identical replicas, structurally separate: synthetic
		// owners memoize their answers and are not safe to share across
		// concurrently running tenants.
		s, err := synthetic.GenerateStudy(cfg)
		if err != nil {
			return err
		}
		studies[i] = s
	}
	fmt.Printf("riskbench: generated %d replicas in %v (%d owners, %d strangers each)\n",
		nTenants, time.Since(genStart).Round(time.Millisecond),
		len(studies[0].Owners), studies[0].TotalStrangers())

	transport := &simTransport{rtt: rtt, owners: map[string]map[graph.UserID]*synthetic.Owner{}}
	tenants := make([]fleet.Tenant, nTenants)
	for i, s := range studies {
		id := fmt.Sprintf("tenant%02d", i)
		t := fleet.Tenant{ID: id, Graph: s.Graph, Store: s.Profiles}
		for _, o := range s.Owners {
			t.Jobs = append(t.Jobs, fleet.OwnerJob{
				Owner:      o.ID,
				Annotator:  active.Infallible(o),
				Confidence: o.Confidence,
			})
		}
		tenants[i] = t
		transport.add(id, s)
	}

	// Fleet job concurrency: jobs spend most of their wall time waiting
	// on annotator round-trips, so the scheduler keeps many more jobs in
	// flight than there are CPUs — CPU parallelism stays bounded by
	// GOMAXPROCS either way, which keeps the comparison against the
	// serial baseline at an equal compute budget. An explicit -workers
	// value caps both sides.
	fleetWorkers := workers
	totalJobs := nTenants * len(studies[0].Owners)
	if fleetWorkers <= 0 {
		fleetWorkers = totalJobs
		if fleetWorkers > 64 {
			fleetWorkers = 64
		}
	}
	fcfg := fleet.Config{
		Engine:   core.DefaultConfig(),
		Workers:  fleetWorkers,
		Weights:  cluster.NewWeightCache(),
		MaxBatch: fleetWorkers,
	}
	if rtt > 0 {
		fcfg.Transport = transport
	}
	res, err := fleet.Run(context.Background(), fcfg, tenants)
	if err != nil {
		return err
	}
	for _, tr := range res.Tenants {
		for ji, e := range tr.Errs {
			if e != nil {
				return fmt.Errorf("fleet: tenant %s job %d: %w", tr.ID, ji, e)
			}
		}
	}

	// Serial baseline: the same jobs one after another, each single run
	// getting the full worker budget and each question paying its own
	// round-trip. The owners' memoized answers are already warm from the
	// fleet phase, which only flatters the baseline.
	scfg := core.DefaultConfig()
	scfg.Workers = workers
	engine := core.New(scfg)
	serialRuns := make([][]*core.OwnerRun, nTenants)
	serialQueries := 0
	serialStart := time.Now()
	for ti, s := range studies {
		serialRuns[ti] = make([]*core.OwnerRun, len(s.Owners))
		for ji, o := range s.Owners {
			var ann active.FallibleAnnotator = active.Infallible(o)
			if rtt > 0 {
				ann = rttAnnotator{inner: ann, rtt: rtt}
			}
			run, err := engine.RunOwner(context.Background(), s.Graph, s.Profiles, o.ID, ann, o.Confidence)
			if err != nil {
				return fmt.Errorf("serial baseline: tenant %d owner %d: %w", ti, o.ID, err)
			}
			serialRuns[ti][ji] = run
			serialQueries += run.QueriedCount()
		}
	}
	serialElapsed := time.Since(serialStart)

	identical := true
	for ti := range serialRuns {
		for ji, want := range serialRuns[ti] {
			if d := core.DiffRuns(res.Tenants[ti].Runs[ji], want); d != "" {
				identical = false
				fmt.Fprintf(os.Stderr, "riskbench: fleet output differs from serial for tenant %d owner %d: %s\n",
					ti, want.Owner, d)
			}
		}
	}

	serialOwners := nTenants * len(studies[0].Owners)
	serialOPS := float64(serialOwners) / serialElapsed.Seconds()
	serialQPS := float64(serialQueries) / serialElapsed.Seconds()
	speedup := res.Stats.OwnersPerSec() / serialOPS

	t := stats.NewTable("Fleet throughput — multi-tenant scheduler vs sequential single-owner runs (identical per-owner reports)",
		"mode", "owners", "queries", "elapsed", "owners/sec", "queries/sec", "cache hits", "round-trips")
	t.AddRow("fleet",
		fmt.Sprintf("%d", res.Stats.Owners),
		fmt.Sprintf("%d", res.Stats.Queries),
		res.Stats.Elapsed.Round(time.Millisecond).String(),
		fmt.Sprintf("%.2f", res.Stats.OwnersPerSec()),
		fmt.Sprintf("%.1f", res.Stats.QueriesPerSec()),
		stats.Pct(res.Stats.Cache.HitRate()),
		fmt.Sprintf("%d", res.Stats.Batch.RoundTrips))
	t.AddRow("serial",
		fmt.Sprintf("%d", serialOwners),
		fmt.Sprintf("%d", serialQueries),
		serialElapsed.Round(time.Millisecond).String(),
		fmt.Sprintf("%.2f", serialOPS),
		fmt.Sprintf("%.1f", serialQPS),
		"-",
		fmt.Sprintf("%d", serialQueries))
	fmt.Println(t)
	fmt.Printf("fleet speedup: %.2fx owners/sec  (batch mean %.1f questions/round-trip, cache %d entries, identical reports: %v)\n\n",
		speedup, res.Stats.Batch.MeanBatchSize(), res.Stats.Cache.Entries, identical)

	fmt.Println("riskbench: micro-benchmarks (reference vs optimized hot paths)...")
	micro := microBenches(seed)
	for _, name := range []string{"montecarlo_map", "montecarlo_snapshot", "ps_matrix_pairwise", "ps_matrix_indexed"} {
		m := micro[name]
		fmt.Printf("  %-22s %12d ns/op %10d B/op %8d allocs/op\n", name, m.NsPerOp, m.BytesPerOp, m.AllocsPerOp)
	}
	fmt.Println()

	report := fleetBenchReport{
		Scale:           scale,
		Seed:            seed,
		Tenants:         nTenants,
		OwnersPerTenant: len(studies[0].Owners),
		Workers:         resolved,
		RTTMillis:       float64(rtt) / float64(time.Millisecond),
		Fleet: fleetSide{
			Owners:        res.Stats.Owners,
			Queries:       res.Stats.Queries,
			ElapsedMillis: float64(res.Stats.Elapsed) / float64(time.Millisecond),
			OwnersPerSec:  res.Stats.OwnersPerSec(),
			QueriesPerSec: res.Stats.QueriesPerSec(),

			CacheEntries:    res.Stats.Cache.Entries,
			CacheHitRate:    res.Stats.Cache.HitRate(),
			BatchRoundTrips: res.Stats.Batch.RoundTrips,
			BatchMeanSize:   res.Stats.Batch.MeanBatchSize(),
		},
		Serial: fleetSide{
			Owners:        serialOwners,
			Queries:       serialQueries,
			ElapsedMillis: float64(serialElapsed) / float64(time.Millisecond),
			OwnersPerSec:  serialOPS,
			QueriesPerSec: serialQPS,
		},
		Speedup:   speedup,
		Identical: identical,
		Micro:     micro,
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(outPath, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("riskbench: wrote %s\n", outPath)
	if !identical {
		return fmt.Errorf("fleet reports are not byte-identical to serial output")
	}
	return nil
}

// microBenches times the two optimized hot paths against their
// retained reference implementations on a small fixed-size study, via
// testing.Benchmark, so the speedups land in BENCH_fleet.json next to
// the fleet numbers.
func microBenches(seed int64) map[string]microResult {
	cfg := synthetic.SmallStudyConfig()
	cfg.Owners = 1
	cfg.Ego.Strangers = 400
	cfg.Seed = seed
	study, err := synthetic.GenerateStudy(cfg)
	if err != nil {
		return nil
	}
	g := study.Graph
	store := study.Profiles
	owner := study.Owners[0]
	targets := owner.Strangers()
	snap := g.Snapshot()
	pcfg := propagation.DefaultConfig()

	ids := targets
	if len(ids) > 120 {
		ids = ids[:120]
	}
	profiles := make([]*profile.Profile, len(ids))
	for i, id := range ids {
		profiles[i] = store.Get(id)
	}
	psctx := similarity.NewPSContext(store, ids, nil)

	record := func(f func(b *testing.B)) microResult {
		r := testing.Benchmark(f)
		return microResult{NsPerOp: r.NsPerOp(), AllocsPerOp: r.AllocsPerOp(), BytesPerOp: r.AllocedBytesPerOp()}
	}
	return map[string]microResult{
		"montecarlo_map": record(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := propagation.MonteCarloReference(g, owner.ID, targets, pcfg); err != nil {
					b.Fatal(err)
				}
			}
		}),
		"montecarlo_snapshot": record(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := propagation.MonteCarloSnapshot(snap, owner.ID, targets, pcfg); err != nil {
					b.Fatal(err)
				}
			}
		}),
		"ps_matrix_pairwise": record(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				psctx.MatrixReference(profiles)
			}
		}),
		"ps_matrix_indexed": record(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				psctx.Matrix(profiles)
			}
		}),
	}
}
