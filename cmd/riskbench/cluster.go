package main

// Cluster benchmark mode (-nodes): stands up N in-process sightd
// replicas over one shared checkpoint store, runs every owner through
// the sharded serving tier via the client-side cluster router, and —
// for N > 1 — kills one replica mid-sweep to measure failover. Every
// served report is verified byte-identical to the in-process serial
// run, so the numbers isolate routing and recovery cost: forwarding
// overhead, adoption counts and the latency from the kill to the
// first displaced job completing on a survivor. Results land in
// BENCH_cluster.json (see EXPERIMENTS.md and docs/CLUSTER.md).

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	sight "sightrisk"
	"sightrisk/client"
	"sightrisk/internal/dataset"
	"sightrisk/internal/faults"
	"sightrisk/internal/graph"
	"sightrisk/internal/label"
	"sightrisk/internal/obs"
	"sightrisk/internal/parallel"
	"sightrisk/internal/place"
	"sightrisk/internal/server"
	"sightrisk/internal/stats"
	"sightrisk/internal/synthetic"
)

// benchHolder lets each httptest listener come up before the server it
// will serve exists: the roster needs every node's URL, and every
// node's server needs the roster.
type benchHolder struct {
	mu sync.Mutex
	h  http.Handler
}

func (bh *benchHolder) set(h http.Handler) {
	bh.mu.Lock()
	bh.h = h
	bh.mu.Unlock()
}

func (bh *benchHolder) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	bh.mu.Lock()
	h := bh.h
	bh.mu.Unlock()
	if h == nil {
		http.Error(w, "node not up yet", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

// benchCluster is an in-process N-replica sightd cluster over one
// shared state directory.
type benchCluster struct {
	nodes   []place.Node
	srvs    []*server.Server
	hss     []*httptest.Server
	killed  []bool
	metrics []*obs.Metrics
}

// newBenchCluster stands up n replicas named n1..nN behind httptest
// listeners, sharing stateDir. customize (optional) tweaks each node's
// config before the server is built.
func newBenchCluster(n, workers int, stateDir string, mk func() map[string]*dataset.Dataset, customize func(i int, cfg *server.Config)) (*benchCluster, error) {
	bc := &benchCluster{
		srvs:    make([]*server.Server, n),
		hss:     make([]*httptest.Server, n),
		killed:  make([]bool, n),
		metrics: make([]*obs.Metrics, n),
	}
	holders := make([]*benchHolder, n)
	for i := 0; i < n; i++ {
		holders[i] = &benchHolder{}
		bc.hss[i] = httptest.NewServer(holders[i])
		bc.nodes = append(bc.nodes, place.Node{ID: fmt.Sprintf("n%d", i+1), URL: bc.hss[i].URL})
	}
	for i := 0; i < n; i++ {
		roster, err := place.NewRoster(bc.nodes[i].ID, bc.nodes)
		if err != nil {
			bc.close()
			return nil, err
		}
		bc.metrics[i] = &obs.Metrics{}
		cfg := server.Config{
			Datasets:      mk(),
			Workers:       workers,
			StateDir:      stateDir,
			Cluster:       roster,
			Metrics:       bc.metrics[i],
			ProbeInterval: 50 * time.Millisecond,
		}
		if customize != nil {
			customize(i, &cfg)
		}
		srv, err := server.New(cfg)
		if err != nil {
			bc.close()
			return nil, err
		}
		bc.srvs[i] = srv
		holders[i].set(srv)
	}
	return bc, nil
}

// kill simulates the abrupt death of node i: the server stops writing
// to the shared store and the listener goes away so peers see
// connection failures.
func (bc *benchCluster) kill(i int) {
	bc.killed[i] = true
	bc.srvs[i].Kill()
	bc.hss[i].CloseClientConnections()
	bc.hss[i].Close()
}

// close drains every surviving node and shuts its listener.
func (bc *benchCluster) close() {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i := range bc.hss {
		if bc.killed[i] {
			continue
		}
		if bc.srvs[i] != nil {
			bc.srvs[i].Drain(ctx)
		}
		bc.hss[i].Close()
	}
}

// client builds the client-side cluster router over all replicas.
func (bc *benchCluster) client() (*client.Cluster, error) {
	cns := make([]client.ClusterNode, len(bc.nodes))
	for i, n := range bc.nodes {
		cns[i] = client.ClusterNode{ID: n.ID, URL: n.URL}
	}
	return client.NewCluster(cns)
}

// clusterRun is one N-replica sweep's numbers in BENCH_cluster.json.
type clusterRun struct {
	Nodes         int     `json:"nodes"`
	Owners        int     `json:"owners"`
	ElapsedMillis float64 `json:"elapsed_ms"`
	OwnersPerSec  float64 `json:"owners_per_sec"`
	// Forwards counts submissions relayed to the ring owner; Adoptions
	// counts jobs a survivor picked up from the shared store.
	Forwards  uint64 `json:"forwards"`
	Adoptions uint64 `json:"adoptions"`
	// KilledNode is the replica killed mid-sweep ("" when N = 1 or no
	// job was still in flight at the kill point).
	KilledNode string `json:"killed_node,omitempty"`
	// DisplacedJobs is how many jobs were placed on the killed node and
	// unfinished at the kill.
	DisplacedJobs int `json:"displaced_jobs,omitempty"`
	// RecoveryMillis is the latency from the kill to the first
	// displaced job completing on a survivor.
	RecoveryMillis float64 `json:"recovery_ms,omitempty"`
	Identical      bool    `json:"identical_reports"`
}

// clusterBenchReport is the BENCH_cluster.json shape.
type clusterBenchReport struct {
	Scale   string `json:"scale"`
	Seed    int64  `json:"seed"`
	Owners  int    `json:"owners"`
	Workers int    `json:"workers"`
	// Serial is the in-process baseline every served report is verified
	// byte-identical against.
	Serial serveSide    `json:"serial"`
	Runs   []clusterRun `json:"runs"`
}

// serialBaseline runs every owner through the in-process library path
// and returns the wire-encoded report bytes the served runs must
// reproduce, plus throughput numbers.
func serialBaseline(ctx context.Context, ds *dataset.Dataset) (map[graph.UserID][]byte, serveSide, error) {
	net := sight.WrapNetwork(ds.Graph, ds.ProfileStore())
	want := make(map[graph.UserID][]byte, len(ds.Owners))
	queries := 0
	start := time.Now()
	for _, rec := range ds.Owners {
		ann := dataset.StoredAnnotator{Labels: rec.Labels, Fallback: label.Risky}
		rep, err := sight.EstimateRisk(ctx, net, rec.ID, ann, sight.DefaultOptions())
		if err != nil {
			return nil, serveSide{}, fmt.Errorf("serial baseline: owner %d: %w", rec.ID, err)
		}
		b, err := json.Marshal(client.FromReport(rep))
		if err != nil {
			return nil, serveSide{}, err
		}
		want[rec.ID] = b
		queries += rep.LabelsRequested
	}
	elapsed := time.Since(start)
	side := serveSide{
		Owners:         len(ds.Owners),
		Queries:        queries,
		ElapsedMillis:  float64(elapsed) / float64(time.Millisecond),
		OwnersPerSec:   float64(len(ds.Owners)) / elapsed.Seconds(),
		MillisPerOwner: float64(elapsed) / float64(time.Millisecond) / float64(max(1, len(ds.Owners))),
	}
	return want, side, nil
}

// runClusterSweep runs every owner through an n-replica cluster as
// stored-annotator jobs, killing one replica mid-sweep when kill is
// set, and verifies every report against want.
func runClusterSweep(ds *dataset.Dataset, want map[graph.UserID][]byte, n, workers int, kill bool, mk func() map[string]*dataset.Dataset) (clusterRun, error) {
	run := clusterRun{Nodes: n, Owners: len(ds.Owners), Identical: true}
	stateDir, err := os.MkdirTemp("", "riskbench-cluster-")
	if err != nil {
		return run, err
	}
	defer os.RemoveAll(stateDir)

	bc, err := newBenchCluster(n, workers, stateDir, mk, nil)
	if err != nil {
		return run, err
	}
	defer bc.close()
	cl, err := bc.client()
	if err != nil {
		return run, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	// Submit everything up front, then reap in order. The kill fires
	// once half the sweep has completed, aimed at a replica that still
	// has jobs in flight.
	type pending struct {
		owner graph.UserID
		id    string
		node  string
	}
	jobs := make([]pending, 0, len(ds.Owners))
	start := time.Now()
	for _, rec := range ds.Owners {
		st, err := cl.Submit(ctx, &client.EstimateRequest{
			Dataset: "study", Owner: int64(rec.ID), Annotator: client.AnnotatorStored,
		})
		if err != nil {
			return run, fmt.Errorf("cluster n=%d: submit owner %d: %w", n, rec.ID, err)
		}
		jobs = append(jobs, pending{owner: rec.ID, id: st.ID, node: st.Node})
	}

	var killTime time.Time
	doneIDs := make(map[string]bool, len(jobs))
	maybeKill := func(completed int) {
		if !kill || run.KilledNode != "" || completed < len(jobs)/2 {
			return
		}
		// Aim at a replica that still owns unfinished work so the
		// failover path is actually exercised.
		for _, p := range jobs {
			if doneIDs[p.id] {
				continue
			}
			for i, node := range bc.nodes {
				if node.ID == p.node && !bc.killed[i] {
					run.KilledNode = node.ID
					killTime = time.Now()
					bc.kill(i)
					return
				}
			}
		}
	}

	completed := 0
	for _, p := range jobs {
		fin, err := cl.Wait(ctx, p.id)
		if err != nil {
			return run, fmt.Errorf("cluster n=%d: wait owner %d: %w", n, p.owner, err)
		}
		if fin.Status != client.StatusDone {
			return run, fmt.Errorf("cluster n=%d: owner %d ended %q: %v", n, p.owner, fin.Status, fin.Error)
		}
		got, err := json.Marshal(fin.Report)
		if err != nil {
			return run, err
		}
		if string(got) != string(want[p.owner]) {
			run.Identical = false
			fmt.Fprintf(os.Stderr, "riskbench: cluster n=%d report for owner %d differs from serial run\n", n, p.owner)
		}
		doneIDs[p.id] = true
		completed++
		if run.KilledNode != "" && p.node == run.KilledNode {
			run.DisplacedJobs++
			if run.RecoveryMillis == 0 {
				run.RecoveryMillis = float64(time.Since(killTime)) / float64(time.Millisecond)
			}
		}
		maybeKill(completed)
	}
	elapsed := time.Since(start)
	run.ElapsedMillis = float64(elapsed) / float64(time.Millisecond)
	run.OwnersPerSec = float64(len(jobs)) / elapsed.Seconds()
	for i := range bc.metrics {
		run.Forwards += bc.metrics[i].ClusterForwards.Load()
		run.Adoptions += bc.metrics[i].ClusterAdoptions.Load()
	}
	return run, nil
}

// runClusterBench is -nodes mode: the replica-count sweep with
// mid-sweep kills, verified byte-identical against the serial run.
func runClusterBench(scale string, seed int64, workers int, nodesSpec, outPath string) error {
	var counts []int
	for _, f := range strings.Split(nodesSpec, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n < 1 {
			return fmt.Errorf("bad -nodes entry %q (want positive replica counts like \"1,2,4\")", f)
		}
		counts = append(counts, n)
	}
	if len(counts) == 0 {
		return fmt.Errorf("-nodes is empty")
	}

	cfg, err := studyConfig(scale, seed)
	if err != nil {
		return err
	}
	resolved := parallel.ResolveWorkers(workers)
	fmt.Printf("riskbench: cluster mode — scale=%s seed=%d nodes=%v (server workers=%d)\n", scale, seed, counts, resolved)

	study, err := synthetic.GenerateStudy(cfg)
	if err != nil {
		return err
	}
	ds := dataset.FromStudy(study, true)
	mk := func() map[string]*dataset.Dataset {
		s, err := synthetic.GenerateStudy(cfg)
		if err != nil {
			panic(err) // same config just succeeded
		}
		return map[string]*dataset.Dataset{"study": dataset.FromStudy(s, true)}
	}
	fmt.Printf("riskbench: study: %d owners, %d strangers total\n", len(ds.Owners), study.TotalStrangers())

	ctx := context.Background()
	want, serial, err := serialBaseline(ctx, ds)
	if err != nil {
		return err
	}

	report := clusterBenchReport{
		Scale:   scale,
		Seed:    seed,
		Owners:  len(ds.Owners),
		Workers: resolved,
		Serial:  serial,
	}
	identical := true
	for _, n := range counts {
		run, err := runClusterSweep(ds, want, n, resolved, n > 1, mk)
		if err != nil {
			return err
		}
		report.Runs = append(report.Runs, run)
		identical = identical && run.Identical
	}

	t := stats.NewTable("Cluster — sharded sightd with kill-1-of-N failover (reports verified against the serial run)",
		"nodes", "owners", "elapsed", "owners/s", "forwards", "adoptions", "killed", "displaced", "recovery")
	for _, r := range report.Runs {
		killed, displaced, recovery := "-", "-", "-"
		if r.KilledNode != "" {
			killed = r.KilledNode
			displaced = fmt.Sprintf("%d", r.DisplacedJobs)
			recovery = fmt.Sprintf("%.0fms", r.RecoveryMillis)
		}
		t.AddRow(fmt.Sprintf("%d", r.Nodes), fmt.Sprintf("%d", r.Owners),
			fmt.Sprintf("%.0fms", r.ElapsedMillis), fmt.Sprintf("%.1f", r.OwnersPerSec),
			fmt.Sprintf("%d", r.Forwards), fmt.Sprintf("%d", r.Adoptions), killed, displaced, recovery)
	}
	fmt.Println(t)
	fmt.Printf("serial baseline: %.1f owners/s   identical reports: %v\n\n", serial.OwnersPerSec, identical)

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(outPath, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("riskbench: wrote %s\n", outPath)
	if !identical {
		return fmt.Errorf("clustered reports are not byte-identical to serial output")
	}
	return nil
}

// auditCluster is the -audit leg for the serving cluster: one
// remote-annotated job on a 2-node cluster, the owning replica killed
// by a checkpoint tripwire mid-run, and the post-failover report
// compared byte for byte against the uninterrupted single-node serial
// run. Returns the checkpoint count at the kill and a non-empty detail
// on divergence.
func auditCluster(seed int64, workers int) (int, string, error) {
	cfg := synthetic.SmallStudyConfig()
	cfg.Owners = 1
	cfg.Seed = seed
	study, err := synthetic.GenerateStudy(cfg)
	if err != nil {
		return 0, "", err
	}
	ds := dataset.FromStudy(study, true)
	rec := ds.Owners[0]
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	want, _, err := serialBaseline(ctx, ds)
	if err != nil {
		return 0, "", err
	}

	stateDir, err := os.MkdirTemp("", "riskbench-cluster-audit-")
	if err != nil {
		return 0, "", err
	}
	defer os.RemoveAll(stateDir)

	// Kill the owning replica right after its 3rd checkpoint flush — a
	// few committed rounds, strictly mid-run.
	killNow := make(chan struct{})
	trip := faults.NewTripwire(3, func() { close(killNow) })
	mk := func() map[string]*dataset.Dataset {
		s, err := synthetic.GenerateStudy(cfg)
		if err != nil {
			panic(err) // same config just succeeded
		}
		return map[string]*dataset.Dataset{"study": dataset.FromStudy(s, true)}
	}
	bc, err := newBenchCluster(2, workers, stateDir, mk, func(i int, c *server.Config) {
		c.OnCheckpoint = func(string) { trip.Observe() }
	})
	if err != nil {
		return 0, "", err
	}
	defer bc.close()
	cl, err := bc.client()
	if err != nil {
		return 0, "", err
	}
	for _, c := range cl.Clients {
		c.LongPoll = time.Second
	}

	victim := place.BuildRing(1, []string{"n1", "n2"}).Owner(int64(rec.ID))
	st, err := cl.Submit(ctx, &client.EstimateRequest{Dataset: "study", Owner: int64(rec.ID)})
	if err != nil {
		return 0, "", err
	}

	labels := rec.Labels
	type driven struct {
		rep *client.Report
		err error
	}
	done := make(chan driven, 1)
	go func() {
		rep, err := cl.Drive(ctx, st.ID, func(stranger int64) (int, error) {
			if l, ok := labels[graph.UserID(stranger)]; ok {
				return int(l), nil
			}
			return int(label.Risky), nil
		})
		done <- driven{rep, err}
	}()

	select {
	case <-killNow:
	case d := <-done:
		if d.err != nil {
			return trip.Count(), "", d.err
		}
		return trip.Count(), "job finished before the kill tripwire fired; no failover exercised", nil
	case <-ctx.Done():
		return trip.Count(), "", fmt.Errorf("kill tripwire never fired")
	}
	for i, n := range bc.nodes {
		if n.ID == victim {
			bc.kill(i)
		}
	}

	d := <-done
	if d.err != nil {
		return trip.Count(), "", fmt.Errorf("drive across node death: %w", d.err)
	}
	got, err := json.Marshal(d.rep)
	if err != nil {
		return trip.Count(), "", err
	}
	if string(got) != string(want[rec.ID]) {
		return trip.Count(), fmt.Sprintf("post-failover report differs from single-node serial run\nserved: %s\nserial: %s", got, want[rec.ID]), nil
	}
	return trip.Count(), "", nil
}
