package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	sight "sightrisk"
	"sightrisk/internal/active"
	"sightrisk/internal/core"
	"sightrisk/internal/delta"
	"sightrisk/internal/graph"
	"sightrisk/internal/profile"
)

// adviseRow is one network-size measurement of the pre-acceptance
// counterfactual: the candidate edge applied to a clone of the owner's
// graph, then the counterfactual report computed from scratch and via
// delta.Revise against the owner's current run.
type adviseRow struct {
	Strangers   int     `json:"strangers"`
	Nodes       int     `json:"nodes"`
	Candidate   int64   `json:"candidate"`
	Verdict     string  `json:"verdict"`
	FullMS      float64 `json:"full_ms"`
	CounterMS   float64 `json:"counterfactual_ms"`
	Speedup     float64 `json:"speedup"`
	PoolsTotal  int     `json:"pools_total"`
	PoolsReused int     `json:"pools_reused"`
	PoolsRerun  int     `json:"pools_rerun"`
	ByteIdent   bool    `json:"byte_identical"`
}

// adviseBench is the BENCH_advise.json document.
type adviseBench struct {
	GeneratedAt string      `json:"generated_at"`
	Seed        int64       `json:"seed"`
	Workers     int         `json:"workers"`
	Rows        []adviseRow `json:"rows"`
}

// adviseCandidate picks the request's candidate deterministically: the
// best-connected stranger, ties broken by smallest ID. Triadic closure
// makes this the modal friend request — the people who actually send
// one are the 2-hop neighbours with the most mutual friends, not the
// periphery. It is also the case the delta engine is built for: a
// well-connected candidate sits in the small high-similarity pools, so
// accepting them perturbs little of the pool partition, whereas a leaf
// stranger lives in the large low-similarity pools and its counterfactual
// approaches a full recompute (the bench reports pools reused so that
// cost model stays visible).
func adviseCandidate(g *graph.Graph, prior *core.OwnerRun) graph.UserID {
	best := prior.Strangers[0]
	for _, s := range prior.Strangers[1:] {
		if d, bd := g.Degree(s), g.Degree(best); d > bd || (d == bd && s < best) {
			best = s
		}
	}
	return best
}

// counterfactual builds the post-acceptance graph: a clone of g with
// the (owner, candidate) edge added, plus the batch describing it.
func counterfactual(g *graph.Graph, store *profile.Store, owner, cand graph.UserID) (*graph.Graph, delta.Batch, error) {
	gc := g.Clone()
	batch := delta.Batch{{Kind: delta.EdgeAdd, A: owner, B: cand}}
	if err := batch.Apply(gc, store); err != nil {
		return nil, nil, err
	}
	return gc, batch, nil
}

// assessBytes renders the (before, after) run pair as the canonical
// JSON advise assessment — the determinism probe: two runs that would
// serve different /v1/advise bodies produce different bytes here.
func assessBytes(before, after *core.OwnerRun, cand graph.UserID) ([]byte, error) {
	policy := sight.BuildAccessPolicy(sight.DefaultSensitivity())
	a, err := policy.AssessRequest(sight.AssembleReport(before), sight.AssembleReport(after), cand)
	if err != nil {
		return nil, err
	}
	return json.Marshal(a)
}

// runAdviseBench is -advise mode: per network size it runs the owner
// once to completion, picks a friendship-request candidate from the
// stranger list, and measures the counterfactual (candidate edge on a
// cloned graph) computed from scratch against delta.Revise riding the
// prior run — asserting the two byte-identical, pinning the advise
// assessment bytes across worker counts 1/2/4, and requiring the >=10x
// speedup at 10^4 strangers and above. Results go to stdout and to
// outPath.
func runAdviseBench(sizesSpec string, seed int64, workers int, outPath string) error {
	var sizes []int
	for _, s := range strings.Split(sizesSpec, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 50 {
			return fmt.Errorf("bad -advise-sizes entry %q", s)
		}
		sizes = append(sizes, n)
	}

	bench := adviseBench{GeneratedAt: time.Now().UTC().Format(time.RFC3339), Seed: seed, Workers: workers}
	fmt.Printf("riskbench: advise sweep sizes=%v seed=%d workers=%d\n", sizes, seed, workers)
	fmt.Printf("%10s %8s %10s %8s %12s %14s %9s %7s %7s %6s\n",
		"strangers", "nodes", "candidate", "verdict", "full", "counterfactual", "speedup", "pools", "reused", "ident")

	ctx := context.Background()
	for _, n := range sizes {
		study, o, err := incrStudy(n, seed)
		if err != nil {
			return fmt.Errorf("generate %d: %w", n, err)
		}
		ann := active.Infallible(o)
		cfg := core.DefaultConfig()
		cfg.Workers = workers

		prior, err := core.New(cfg).RunOwner(ctx, study.Graph, study.Profiles, o.ID, ann, o.Confidence)
		if err != nil {
			return fmt.Errorf("baseline at %d: %w", n, err)
		}
		cand := adviseCandidate(study.Graph, prior)
		gc, batch, err := counterfactual(study.Graph, study.Profiles, o.ID, cand)
		if err != nil {
			return err
		}

		fullStart := time.Now()
		ref, err := core.New(cfg).RunOwner(ctx, gc, study.Profiles, o.ID, ann, o.Confidence)
		if err != nil {
			return fmt.Errorf("full counterfactual at %d: %w", n, err)
		}
		fullT := time.Since(fullStart)

		incrStart := time.Now()
		revised, st, err := delta.Revise(ctx, cfg, gc, study.Profiles, o.ID, ann, o.Confidence, prior, batch)
		if err != nil {
			return fmt.Errorf("revise at %d: %w", n, err)
		}
		incrT := time.Since(incrStart)

		ident := core.DiffRuns(ref, revised) == ""
		if !ident {
			return fmt.Errorf("advise at %d strangers: counterfactual revision differs from full recompute: %s",
				n, core.DiffRuns(ref, revised))
		}

		// Pin the served bytes across worker counts: every Workers value
		// must yield the same advise assessment as the reference.
		refBytes, err := assessBytes(prior, ref, cand)
		if err != nil {
			return err
		}
		for _, w := range []int{1, 2, 4} {
			wcfg := core.DefaultConfig()
			wcfg.Workers = w
			revW, _, err := delta.Revise(ctx, wcfg, gc, study.Profiles, o.ID, ann, o.Confidence, prior, batch)
			if err != nil {
				return fmt.Errorf("workers=%d revise at %d: %w", w, n, err)
			}
			if d := core.DiffRuns(ref, revW); d != "" {
				return fmt.Errorf("workers=%d at %d strangers: counterfactual diverges: %s", w, n, d)
			}
			gotBytes, err := assessBytes(prior, revW, cand)
			if err != nil {
				return err
			}
			if string(gotBytes) != string(refBytes) {
				return fmt.Errorf("workers=%d at %d strangers: advise assessment bytes diverge", w, n)
			}
		}

		var verdict string
		{
			policy := sight.BuildAccessPolicy(sight.DefaultSensitivity())
			a, err := policy.AssessRequest(sight.AssembleReport(prior), sight.AssembleReport(ref), cand)
			if err != nil {
				return err
			}
			verdict = a.Verdict
		}

		row := adviseRow{
			Strangers:   n,
			Nodes:       study.Graph.NumNodes(),
			Candidate:   int64(cand),
			Verdict:     verdict,
			FullMS:      float64(fullT.Microseconds()) / 1000,
			CounterMS:   float64(incrT.Microseconds()) / 1000,
			PoolsTotal:  st.PoolsTotal,
			PoolsReused: st.PoolsReused,
			PoolsRerun:  st.PoolsRerun,
			ByteIdent:   ident,
		}
		if incrT > 0 {
			row.Speedup = row.FullMS / row.CounterMS
		}
		fmt.Printf("%10d %8d %10d %8s %12s %14s %8.1fx %7d %7d %6s\n",
			n, row.Nodes, cand, verdict, fullT.Round(time.Millisecond), incrT.Round(time.Millisecond),
			row.Speedup, row.PoolsTotal, row.PoolsReused, "yes")
		bench.Rows = append(bench.Rows, row)
		if n >= 10000 && row.Speedup < 10 {
			return fmt.Errorf("advise at %d strangers: counterfactual speedup %.1fx is below the required 10x", n, row.Speedup)
		}
	}

	out, err := os.Create(outPath)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(bench); err != nil {
		out.Close()
		return err
	}
	if err := out.Close(); err != nil {
		return err
	}
	fmt.Printf("riskbench: wrote %s (%d rows)\n", outPath, len(bench.Rows))
	return nil
}

// auditAdvise is the advise leg of -audit mode: a small study, one
// candidate edge, and per worker count a full counterfactual recompute
// diffed against delta.Revise plus a byte-compare of the rendered
// advise assessment. Returns the pool count per run and a divergence
// description ("" on pass).
func auditAdvise(seed int64) (int, string, error) {
	study, o, err := incrStudy(300, seed)
	if err != nil {
		return 0, "", err
	}
	ann := active.Infallible(o)
	prior, err := core.New(core.DefaultConfig()).RunOwner(context.Background(), study.Graph, study.Profiles, o.ID, ann, o.Confidence)
	if err != nil {
		return 0, "", err
	}
	cand := adviseCandidate(study.Graph, prior)
	gc, batch, err := counterfactual(study.Graph, study.Profiles, o.ID, cand)
	if err != nil {
		return 0, "", err
	}
	var refBytes []byte
	pools := 0
	for _, w := range []int{1, 2, 4} {
		cfg := core.DefaultConfig()
		cfg.Workers = w
		ref, err := core.New(cfg).RunOwner(context.Background(), gc, study.Profiles, o.ID, ann, o.Confidence)
		if err != nil {
			return 0, "", fmt.Errorf("workers=%d full: %w", w, err)
		}
		revised, st, err := delta.Revise(context.Background(), cfg, gc, study.Profiles, o.ID, ann, o.Confidence, prior, batch)
		if err != nil {
			return 0, "", fmt.Errorf("workers=%d revise: %w", w, err)
		}
		if d := core.DiffRuns(ref, revised); d != "" {
			return pools, fmt.Sprintf("workers=%d: counterfactual revision diverges from full recompute: %s", w, d), nil
		}
		got, err := assessBytes(prior, revised, cand)
		if err != nil {
			return 0, "", err
		}
		if refBytes == nil {
			refBytes = got
		} else if string(got) != string(refBytes) {
			return pools, fmt.Sprintf("workers=%d: advise assessment bytes diverge from workers=1", w), nil
		}
		pools = st.PoolsTotal
	}
	return pools, "", nil
}
