package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"sightrisk/internal/graph"
	"sightrisk/internal/graph/snapfile"
	"sightrisk/internal/obs"
	"sightrisk/internal/synthetic"

	sight "sightrisk"
)

// scaleRow is one population size's measurements in the scale curve.
type scaleRow struct {
	Nodes        int     `json:"nodes"`
	Edges        int     `json:"edges"`
	GenerateMS   float64 `json:"generate_ms"`
	SnapBytes    int64   `json:"snap_bytes"`
	SnapWriteMS  float64 `json:"snap_write_ms"`
	SnapOpenMS   float64 `json:"snap_open_ms"`
	JSONBytes    int64   `json:"json_bytes,omitempty"`
	JSONLoadMS   float64 `json:"json_load_ms,omitempty"`
	OpenSpeedup  float64 `json:"open_speedup,omitempty"`
	Owners       int     `json:"owners"`
	OwnersPerSec float64 `json:"owners_per_sec"`
	RSSMB        float64 `json:"rss_mb"`
	ByteIdent    *bool   `json:"mmap_byte_identical,omitempty"`
}

// scaleBench is the BENCH_scale.json document.
type scaleBench struct {
	GeneratedAt string     `json:"generated_at"`
	Seed        int64      `json:"seed"`
	Workers     int        `json:"workers"`
	Rows        []scaleRow `json:"rows"`
}

// byteIdentityMax is the largest population we double-run (mmap vs
// in-memory) per size to assert report byte-identity; beyond it the
// invariant is covered by the smaller sizes and the package tests.
const byteIdentityMax = 200_000

// scaleMemNeed estimates the peak resident bytes one sweep size costs:
// generation scratch (weights, alias table, edge keys), the CSR and
// profile arrays twice (in-memory + mapped), and the map-backed graph
// that graph.Load materializes for the JSON comparison — by far the
// dominant term.
func scaleMemNeed(nodes int, avgDegree float64) uint64 {
	e := uint64(float64(nodes) * avgDegree / 2)
	gen := uint64(nodes)*28 + e*8
	csr := 2 * (uint64(nodes)*16 + e*24)
	jsonGraph := e * 200 // two map entries per edge plus buckets
	return gen + csr + jsonGraph
}

// memAvailable reads MemAvailable from /proc/meminfo in bytes
// (0, false when unreadable — non-Linux or restricted).
func memAvailable() (uint64, bool) {
	data, err := os.ReadFile("/proc/meminfo")
	if err != nil {
		return 0, false
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "MemAvailable:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0, false
		}
		kb, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return 0, false
		}
		return kb * 1024, true
	}
	return 0, false
}

// rssMB reads the process's resident set size from /proc/self/status
// in MiB (0 when unreadable).
func rssMB() float64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmRSS:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, _ := strconv.ParseFloat(fields[1], 64)
		return kb / 1024
	}
	return 0
}

// writeCSRJSON streams the snapshot as the graph package's JSON edge
// list without materializing a map-backed Graph — the writer side of
// the mmap-vs-JSON load comparison.
func writeCSRJSON(path string, snap *graph.Snapshot) (int64, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	bw.WriteString(`{"nodes":[`)
	for i, id := range snap.Nodes() {
		if i > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString(strconv.FormatInt(int64(id), 10))
	}
	bw.WriteString(`],"edges":[`)
	first := true
	for _, id := range snap.Nodes() {
		for _, nb := range snap.Friends(id) {
			if nb <= id {
				continue
			}
			if !first {
				bw.WriteByte(',')
			}
			first = false
			bw.WriteByte('[')
			bw.WriteString(strconv.FormatInt(int64(id), 10))
			bw.WriteByte(',')
			bw.WriteString(strconv.FormatInt(int64(nb), 10))
			bw.WriteByte(']')
		}
	}
	bw.WriteString(`]}`)
	if err := bw.Flush(); err != nil {
		f.Close()
		return 0, err
	}
	if err := f.Close(); err != nil {
		return 0, err
	}
	st, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// scaleAnnotator answers the owner's labeling questions with a cheap
// deterministic rule, so owners/sec measures the pipeline, not the
// annotator.
func scaleAnnotator() sight.Annotator {
	return sight.AnnotatorFunc(func(s sight.UserID) sight.Label {
		return sight.Label(int(s)%3 + 1)
	})
}

// runScaleOwners estimates every owner on the network and returns the
// marshaled reports (for the byte-identity check) plus the elapsed
// wall time.
func runScaleOwners(net *sight.Network, owners []graph.UserID, seed int64, workers int) ([][]byte, time.Duration, error) {
	opts := sight.DefaultOptions()
	opts.Seed = seed
	opts.Workers = workers
	ann := scaleAnnotator()
	out := make([][]byte, 0, len(owners))
	start := time.Now()
	for _, o := range owners {
		rep, err := sight.EstimateRisk(context.Background(), net, o, ann, opts)
		if err != nil {
			return nil, 0, fmt.Errorf("owner %d: %w", o, err)
		}
		b, err := json.Marshal(rep)
		if err != nil {
			return nil, 0, err
		}
		out = append(out, b)
	}
	return out, time.Since(start), nil
}

// auditSnapfile is the snapshot-file leg of -audit mode: the same
// owners estimated twice with the event auditor attached and stage
// digests on — once off the freshly generated in-memory CSR arrays,
// once off a packed, mmap'd snapshot file. The reports and the full
// event trails must both be bit-identical. Returns the events per run
// and a divergence description ("" on pass).
func auditSnapfile(seed int64, workers int) (int, string, error) {
	cfg := synthetic.DefaultScaleConfig(10000)
	cfg.Seed = seed
	cfg.Owners = 2
	sg, err := synthetic.GenerateScale(cfg)
	if err != nil {
		return 0, "", err
	}
	dir, err := os.MkdirTemp("", "riskbench-audit-*")
	if err != nil {
		return 0, "", err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "audit.snap")
	if err := snapfile.Create(path, snapfile.Contents{Snapshot: sg.Snapshot, Profiles: sg.Profiles}); err != nil {
		return 0, "", err
	}
	f, err := snapfile.Open(path)
	if err != nil {
		return 0, "", err
	}
	defer f.Close()

	runSide := func(net *sight.Network) ([][]byte, []obs.Record, error) {
		opts := sight.DefaultOptions()
		opts.Seed = seed
		opts.Workers = workers
		aud := obs.NewAuditor()
		opts.Observability.Observer = aud
		opts.Observability.Trace.Digests = true
		ann := scaleAnnotator()
		reports := make([][]byte, 0, len(sg.Owners))
		for _, o := range sg.Owners {
			rep, err := sight.EstimateRisk(context.Background(), net, o, ann, opts)
			if err != nil {
				return nil, nil, fmt.Errorf("owner %d: %w", o, err)
			}
			b, err := json.Marshal(rep)
			if err != nil {
				return nil, nil, err
			}
			reports = append(reports, b)
		}
		return reports, aud.Trail(), nil
	}

	memReports, memTrail, err := runSide(sight.WrapSnapshot(sg.Snapshot, sg.Profiles.Store()))
	if err != nil {
		return 0, "", fmt.Errorf("in-memory run: %w", err)
	}
	mmapReports, mmapTrail, err := runSide(sight.WrapSnapshot(f.Snapshot(), f.Profiles().Store()))
	if err != nil {
		return 0, "", fmt.Errorf("mmap run: %w", err)
	}
	for i := range memReports {
		if !bytes.Equal(memReports[i], mmapReports[i]) {
			return len(memTrail), fmt.Sprintf("owner %d: mmap-backed report differs from in-memory report", sg.Owners[i]), nil
		}
	}
	if d, diverged := obs.FirstDivergence(memTrail, mmapTrail); diverged {
		return len(memTrail), d.String(), nil
	}
	return len(memTrail), "", nil
}

// runScaleBench is -scale sweep mode: for each population size it
// generates a SNAP-Facebook-like graph straight into CSR, packs it
// into a snapshot file, measures mmap open vs JSON load, runs every
// benchmark owner off the mapped pages, and (at the smaller sizes)
// verifies the mmap-backed reports byte-identical to in-memory ones.
// Results go to stdout and to outPath as JSON.
func runScaleBench(sizesSpec string, seed int64, workers, owners int, outPath string) error {
	var sizes []int
	for _, s := range strings.Split(sizesSpec, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 2 {
			return fmt.Errorf("bad -scale-sizes entry %q", s)
		}
		sizes = append(sizes, n)
	}
	dir, err := os.MkdirTemp("", "riskbench-scale-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	bench := scaleBench{GeneratedAt: time.Now().UTC().Format(time.RFC3339), Seed: seed, Workers: workers}
	fmt.Printf("riskbench: scale sweep sizes=%v seed=%d\n", sizes, seed)
	fmt.Printf("%10s %10s %12s %12s %12s %12s %9s %12s %9s %6s\n",
		"nodes", "edges", "generate", "snap write", "mmap open", "json load", "speedup", "owners/sec", "rss MB", "ident")

	for _, n := range sizes {
		cfg := synthetic.DefaultScaleConfig(n)
		cfg.Seed = seed
		if owners > 0 {
			cfg.Owners = owners
		}
		if avail, ok := memAvailable(); ok {
			if need := scaleMemNeed(n, cfg.AvgDegree); need > avail {
				fmt.Printf("riskbench: stopping before %d nodes: needs ~%.1f GiB, %.1f GiB available\n",
					n, float64(need)/(1<<30), float64(avail)/(1<<30))
				break
			}
		}

		genStart := time.Now()
		sg, err := synthetic.GenerateScale(cfg)
		if err != nil {
			return fmt.Errorf("generate %d: %w", n, err)
		}
		genT := time.Since(genStart)

		snapPath := filepath.Join(dir, fmt.Sprintf("scale-%d.snap", n))
		writeStart := time.Now()
		if err := snapfile.Create(snapPath, snapfile.Contents{Snapshot: sg.Snapshot, Profiles: sg.Profiles}); err != nil {
			return fmt.Errorf("pack %d: %w", n, err)
		}
		writeT := time.Since(writeStart)
		st, err := os.Stat(snapPath)
		if err != nil {
			return err
		}

		openStart := time.Now()
		f, err := snapfile.Open(snapPath)
		if err != nil {
			return fmt.Errorf("open %d: %w", n, err)
		}
		openT := time.Since(openStart)

		row := scaleRow{
			Nodes:       sg.Snapshot.NumNodes(),
			Edges:       sg.Snapshot.NumEdges(),
			GenerateMS:  float64(genT.Microseconds()) / 1000,
			SnapBytes:   st.Size(),
			SnapWriteMS: float64(writeT.Microseconds()) / 1000,
			SnapOpenMS:  float64(openT.Microseconds()) / 1000,
			Owners:      len(sg.Owners),
		}

		// JSON comparison: the same graph through the text codec, when
		// it fits under the decoder's size limit.
		jsonPath := filepath.Join(dir, fmt.Sprintf("scale-%d.json", n))
		jsonBytes, err := writeCSRJSON(jsonPath, sg.Snapshot)
		if err != nil {
			return fmt.Errorf("json write %d: %w", n, err)
		}
		jsonCell := "-"
		if jsonBytes <= graph.MaxDecodeBytes {
			loadStart := time.Now()
			if _, err := graph.Load(jsonPath); err != nil {
				return fmt.Errorf("json load %d: %w", n, err)
			}
			loadT := time.Since(loadStart)
			row.JSONBytes = jsonBytes
			row.JSONLoadMS = float64(loadT.Microseconds()) / 1000
			if openT > 0 {
				row.OpenSpeedup = row.JSONLoadMS / row.SnapOpenMS
			}
			jsonCell = loadT.Round(time.Millisecond).String()
		}
		os.Remove(jsonPath)

		// Owner throughput off the mapped pages.
		mmapNet := sight.WrapSnapshot(f.Snapshot(), f.Profiles().Store())
		mmapReports, elapsed, err := runScaleOwners(mmapNet, sg.Owners, seed, workers)
		if err != nil {
			return fmt.Errorf("owners at %d: %w", n, err)
		}
		if elapsed > 0 {
			row.OwnersPerSec = float64(len(sg.Owners)) / elapsed.Seconds()
		}
		row.RSSMB = rssMB()

		// Standing invariant: mmap-backed estimates are byte-identical
		// to ones computed off the freshly generated in-memory arrays.
		identCell := "-"
		if n <= byteIdentityMax {
			memNet := sight.WrapSnapshot(sg.Snapshot, sg.Profiles.Store())
			memReports, _, err := runScaleOwners(memNet, sg.Owners, seed, workers)
			if err != nil {
				return fmt.Errorf("in-memory owners at %d: %w", n, err)
			}
			ident := len(memReports) == len(mmapReports)
			for i := range memReports {
				if !ident || !bytes.Equal(memReports[i], mmapReports[i]) {
					ident = false
					break
				}
			}
			row.ByteIdent = &ident
			identCell = "yes"
			if !ident {
				f.Close()
				return fmt.Errorf("scale %d: mmap-backed reports differ from in-memory reports", n)
			}
		}
		f.Close()
		os.Remove(snapPath)

		speedCell := "-"
		if row.OpenSpeedup > 0 {
			speedCell = fmt.Sprintf("%.0fx", row.OpenSpeedup)
		}
		fmt.Printf("%10d %10d %12s %12s %12s %12s %9s %12.1f %9.0f %6s\n",
			row.Nodes, row.Edges, genT.Round(time.Millisecond), writeT.Round(time.Millisecond),
			openT.Round(100*time.Microsecond), jsonCell, speedCell, row.OwnersPerSec, row.RSSMB, identCell)
		bench.Rows = append(bench.Rows, row)
	}

	if len(bench.Rows) == 0 {
		return fmt.Errorf("scale sweep: no size fit in available memory")
	}
	out, err := os.Create(outPath)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(bench); err != nil {
		out.Close()
		return err
	}
	if err := out.Close(); err != nil {
		return err
	}
	fmt.Printf("riskbench: wrote %s (%d sizes)\n", outPath, len(bench.Rows))
	return nil
}
