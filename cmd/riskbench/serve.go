package main

// Serving-layer benchmark mode (-serve-rtt): stands up an in-process
// sightd (internal/server behind httptest) over the synthetic study
// and runs every owner through the HTTP API twice — once with the
// server-side stored annotator (no wire loop) and once with the owner
// on the other end of the wire (questions long-polled, answers
// posted). Both served paths are verified byte-identical to the
// in-process serial run, so the numbers isolate pure serving overhead:
// endpoint latency, long-poll wake-up cost and per-question round
// trips. Results land in BENCH_serve.json (see EXPERIMENTS.md).

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"sort"
	"time"

	sight "sightrisk"
	"sightrisk/client"
	"sightrisk/internal/dataset"
	"sightrisk/internal/graph"
	"sightrisk/internal/label"
	"sightrisk/internal/parallel"
	"sightrisk/internal/server"
	"sightrisk/internal/stats"
	"sightrisk/internal/synthetic"
)

// latencyStats summarizes a latency sample in microseconds.
type latencyStats struct {
	Samples   int     `json:"samples"`
	MeanMicro float64 `json:"mean_us"`
	P50Micro  float64 `json:"p50_us"`
	P95Micro  float64 `json:"p95_us"`
}

func summarize(samples []time.Duration) latencyStats {
	if len(samples) == 0 {
		return latencyStats{}
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	pick := func(q float64) float64 {
		i := int(q * float64(len(sorted)-1))
		return float64(sorted[i]) / float64(time.Microsecond)
	}
	return latencyStats{
		Samples:   len(sorted),
		MeanMicro: float64(sum) / float64(len(sorted)) / float64(time.Microsecond),
		P50Micro:  pick(0.50),
		P95Micro:  pick(0.95),
	}
}

// serveSide is one served path's throughput numbers.
type serveSide struct {
	Owners         int     `json:"owners"`
	Queries        int     `json:"queries"`
	ElapsedMillis  float64 `json:"elapsed_ms"`
	OwnersPerSec   float64 `json:"owners_per_sec"`
	MillisPerOwner float64 `json:"ms_per_owner"`
	// MillisPerQuery is the full wire cost of one owner question on the
	// remote path: long-poll wake-up + answer POST (0 on the stored
	// path, which has no wire loop).
	MillisPerQuery float64 `json:"ms_per_query,omitempty"`
}

// serveBenchReport is the BENCH_serve.json shape.
type serveBenchReport struct {
	Scale   string `json:"scale"`
	Seed    int64  `json:"seed"`
	Owners  int    `json:"owners"`
	Workers int    `json:"workers"`
	// Healthz and Status sample raw endpoint latency (request in,
	// response out — no pipeline work).
	Healthz latencyStats `json:"healthz"`
	Status  latencyStats `json:"status"`
	// Serial is the in-process baseline the served paths are verified
	// byte-identical against.
	Serial serveSide `json:"serial"`
	Stored serveSide `json:"stored"`
	Remote serveSide `json:"remote"`
	// StoredOverhead is the served-over-serial wall-time ratio of the
	// stored path — pure serving-layer cost, no owner in the loop.
	StoredOverhead float64 `json:"stored_overhead_ratio"`
	Identical      bool    `json:"identical_reports"`
}

func runServeBench(scale string, seed int64, workers int, outPath string) error {
	cfg, err := studyConfig(scale, seed)
	if err != nil {
		return err
	}
	resolved := parallel.ResolveWorkers(workers)
	fmt.Printf("riskbench: serve mode — scale=%s seed=%d (server workers=%d)\n", scale, seed, resolved)

	study, err := synthetic.GenerateStudy(cfg)
	if err != nil {
		return err
	}
	ds := dataset.FromStudy(study, true)
	fmt.Printf("riskbench: study: %d owners, %d strangers total\n", len(ds.Owners), study.TotalStrangers())

	srv, err := server.New(server.Config{
		Datasets: map[string]*dataset.Dataset{"study": ds},
		Workers:  resolved,
	})
	if err != nil {
		return err
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Drain(ctx)
	}()
	c := client.New(hs.URL)
	c.LongPoll = 10 * time.Second
	ctx := context.Background()

	// Serial baseline: the library path the served reports must
	// reproduce byte for byte.
	net := sight.WrapNetwork(ds.Graph, ds.ProfileStore())
	want := make(map[graph.UserID][]byte, len(ds.Owners))
	serialQueries := 0
	serialStart := time.Now()
	for _, rec := range ds.Owners {
		ann := dataset.StoredAnnotator{Labels: rec.Labels, Fallback: label.Risky}
		rep, err := sight.EstimateRisk(ctx, net, rec.ID, ann, sight.DefaultOptions())
		if err != nil {
			return fmt.Errorf("serial baseline: owner %d: %w", rec.ID, err)
		}
		b, err := json.Marshal(client.FromReport(rep))
		if err != nil {
			return err
		}
		want[rec.ID] = b
		serialQueries += rep.LabelsRequested
	}
	serialElapsed := time.Since(serialStart)

	identical := true
	check := func(path string, owner graph.UserID, rep *client.Report) error {
		got, err := json.Marshal(rep)
		if err != nil {
			return err
		}
		if string(got) != string(want[owner]) {
			identical = false
			fmt.Fprintf(os.Stderr, "riskbench: %s report for owner %d differs from serial run\n", path, owner)
		}
		return nil
	}

	// Stored path: the pipeline runs entirely server-side; the wire
	// carries one submit and one status poll loop.
	storedQueries := 0
	storedStart := time.Now()
	for _, rec := range ds.Owners {
		st, err := c.Submit(ctx, &client.EstimateRequest{
			Dataset: "study", Owner: int64(rec.ID), Annotator: client.AnnotatorStored,
		})
		if err != nil {
			return fmt.Errorf("stored path: owner %d: %w", rec.ID, err)
		}
		fin, err := c.Wait(ctx, st.ID)
		if err != nil {
			return err
		}
		if fin.Status != client.StatusDone {
			return fmt.Errorf("stored path: owner %d ended %q: %v", rec.ID, fin.Status, fin.Error)
		}
		storedQueries += fin.Queries
		if err := check("stored", rec.ID, fin.Report); err != nil {
			return err
		}
	}
	storedElapsed := time.Since(storedStart)

	// Remote path: the owner answers over the wire — every question
	// pays a long-poll wake-up plus an answer POST.
	remoteQueries := 0
	remoteStart := time.Now()
	for _, rec := range ds.Owners {
		labels := rec.Labels
		rep, err := c.Run(ctx, &client.EstimateRequest{Dataset: "study", Owner: int64(rec.ID)},
			func(stranger int64) (int, error) {
				remoteQueries++
				if l, ok := labels[graph.UserID(stranger)]; ok {
					return int(l), nil
				}
				return int(label.Risky), nil
			})
		if err != nil {
			return fmt.Errorf("remote path: owner %d: %w", rec.ID, err)
		}
		if err := check("remote", rec.ID, rep); err != nil {
			return err
		}
	}
	remoteElapsed := time.Since(remoteStart)

	// Raw endpoint latency, sampled against a terminal job's status.
	lastID := ""
	{
		st, err := c.Submit(ctx, &client.EstimateRequest{
			Dataset: "study", Owner: int64(ds.Owners[0].ID), Annotator: client.AnnotatorStored,
		})
		if err != nil {
			return err
		}
		if _, err := c.Wait(ctx, st.ID); err != nil {
			return err
		}
		lastID = st.ID
	}
	const pings = 50
	healthz := make([]time.Duration, 0, pings)
	status := make([]time.Duration, 0, pings)
	for i := 0; i < pings; i++ {
		t0 := time.Now()
		if _, err := c.Health(ctx); err != nil {
			return err
		}
		healthz = append(healthz, time.Since(t0))
		t0 = time.Now()
		if _, err := c.Get(ctx, lastID); err != nil {
			return err
		}
		status = append(status, time.Since(t0))
	}

	side := func(owners, queries int, elapsed time.Duration, perQuery bool) serveSide {
		s := serveSide{
			Owners:         owners,
			Queries:        queries,
			ElapsedMillis:  float64(elapsed) / float64(time.Millisecond),
			OwnersPerSec:   float64(owners) / elapsed.Seconds(),
			MillisPerOwner: float64(elapsed) / float64(time.Millisecond) / float64(max(1, owners)),
		}
		if perQuery {
			s.MillisPerQuery = float64(elapsed) / float64(time.Millisecond) / float64(max(1, queries))
		}
		return s
	}
	report := serveBenchReport{
		Scale:          scale,
		Seed:           seed,
		Owners:         len(ds.Owners),
		Workers:        resolved,
		Healthz:        summarize(healthz),
		Status:         summarize(status),
		Serial:         side(len(ds.Owners), serialQueries, serialElapsed, false),
		Stored:         side(len(ds.Owners), storedQueries, storedElapsed, false),
		Remote:         side(len(ds.Owners), remoteQueries, remoteElapsed, true),
		StoredOverhead: float64(storedElapsed) / float64(serialElapsed),
		Identical:      identical,
	}

	t := stats.NewTable("Serving layer — sightd HTTP paths vs the in-process serial run (identical reports)",
		"path", "owners", "queries", "elapsed", "ms/owner", "ms/query")
	row := func(name string, s serveSide) {
		perQuery := "-"
		if s.MillisPerQuery > 0 {
			perQuery = fmt.Sprintf("%.2f", s.MillisPerQuery)
		}
		t.AddRow(name, fmt.Sprintf("%d", s.Owners), fmt.Sprintf("%d", s.Queries),
			fmt.Sprintf("%.0fms", s.ElapsedMillis), fmt.Sprintf("%.1f", s.MillisPerOwner), perQuery)
	}
	row("serial (in-process)", report.Serial)
	row("served, stored", report.Stored)
	row("served, remote", report.Remote)
	fmt.Println(t)
	fmt.Printf("serving overhead (stored/serial): %.2fx   healthz p50 %.0fµs   status p50 %.0fµs   identical reports: %v\n\n",
		report.StoredOverhead, report.Healthz.P50Micro, report.Status.P50Micro, identical)

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(outPath, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("riskbench: wrote %s\n", outPath)
	if !identical {
		return fmt.Errorf("served reports are not byte-identical to serial output")
	}
	return nil
}
