package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"sightrisk/internal/active"
	"sightrisk/internal/core"
	"sightrisk/internal/delta"
	"sightrisk/internal/graph"
	"sightrisk/internal/profile"
	"sightrisk/internal/synthetic"
)

// incrRow is one (network size, delta size) measurement: a batch of
// that many updates applied to the owner's network, then the report
// recomputed from scratch and via delta.Revise against the prior run.
type incrRow struct {
	Strangers   int     `json:"strangers"`
	Nodes       int     `json:"nodes"`
	DeltaSize   int     `json:"delta_size"`
	FullMS      float64 `json:"full_ms"`
	IncrMS      float64 `json:"incremental_ms"`
	Speedup     float64 `json:"speedup"`
	PoolsTotal  int     `json:"pools_total"`
	PoolsReused int     `json:"pools_reused"`
	PoolsRerun  int     `json:"pools_rerun"`
	ByteIdent   bool    `json:"byte_identical"`
}

// incrBench is the BENCH_incremental.json document.
type incrBench struct {
	GeneratedAt string    `json:"generated_at"`
	Seed        int64     `json:"seed"`
	Workers     int       `json:"workers"`
	Rows        []incrRow `json:"rows"`
}

// incrBatch builds a batch of n updates inside the owner's 2-hop view:
// stranger profile churn (pool-content changes), stranger–friend edges
// (NS drift) and — in larger batches — brand-new strangers. Every
// batch is dirty for the owner, so the measured revision always walks
// the pipeline: the speedup comes from pool-level reuse, not from the
// owner-level no-op path.
//
// Churned strangers come from the prior run's last pools. Pool order
// follows the NSG group and Squeezer cluster order, and reuse is
// index-sensitive (a pool's session seed depends on its position), so
// a change early in that order cascades re-runs through everything
// behind it, while a change near the end invalidates only the tail —
// the steady-state shape of a single profile edit among thousands of
// strangers. Batches with newcomers (n >= 3) still pay the cascade:
// a new stranger lands in a low-similarity group near the front.
func incrBatch(prior *core.OwnerRun, g *graph.Graph, owner graph.UserID, n, round int) delta.Batch {
	var late []graph.UserID
	for i := len(prior.Pools) - 1; i >= 0 && len(late) < 2*n+4; i-- {
		late = append(late, prior.Pools[i].Pool.Members...)
	}
	friends := g.Friends(owner)
	b := make(delta.Batch, 0, n)
	for i := 0; i < n; i++ {
		switch i % 3 {
		case 0:
			s := late[(i*7+round*13)%len(late)]
			b = append(b, delta.Update{Kind: delta.ProfileSet, A: s,
				Attr: string(profile.AttrLocale), Value: fmt.Sprintf("zz_%d_%d", round, i)})
		case 1:
			s := late[(i*11+round*17)%len(late)]
			f := friends[i%len(friends)]
			b = append(b, delta.Update{Kind: delta.EdgeAdd, A: s, B: f})
		default:
			nc := graph.UserID(900000 + round*1000 + i)
			b = append(b,
				delta.Update{Kind: delta.NodeAdd, A: nc},
				delta.Update{Kind: delta.EdgeAdd, A: nc, B: friends[(i/3)%len(friends)]},
				delta.Update{Kind: delta.ProfileSet, A: nc,
					Attr: string(profile.AttrGender), Value: synthetic.GenderFemale})
		}
	}
	return b
}

// incrStudy generates a single-ego study with the given stranger count.
func incrStudy(strangers int, seed int64) (*synthetic.Study, *synthetic.Owner, error) {
	cfg := synthetic.SmallStudyConfig()
	cfg.Owners = 1
	cfg.Ego.Strangers = strangers
	cfg.Seed = seed
	s, err := synthetic.GenerateStudy(cfg)
	if err != nil {
		return nil, nil, err
	}
	return s, s.Owners[0], nil
}

// runIncrementalBench is -incremental mode: per network size it runs
// the owner once to completion, then for each delta size applies a
// fresh update batch and measures a full recompute against
// delta.Revise on the same post-batch graph — asserting the two runs
// byte-identical every time. Results go to stdout and to outPath.
func runIncrementalBench(sizesSpec, deltasSpec string, seed int64, workers int, outPath string) error {
	var sizes, deltas []int
	for _, s := range strings.Split(sizesSpec, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 50 {
			return fmt.Errorf("bad -incr-sizes entry %q", s)
		}
		sizes = append(sizes, n)
	}
	for _, s := range strings.Split(deltasSpec, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			return fmt.Errorf("bad -incr-deltas entry %q", s)
		}
		deltas = append(deltas, n)
	}

	bench := incrBench{GeneratedAt: time.Now().UTC().Format(time.RFC3339), Seed: seed, Workers: workers}
	fmt.Printf("riskbench: incremental sweep sizes=%v deltas=%v seed=%d workers=%d\n", sizes, deltas, seed, workers)
	fmt.Printf("%10s %8s %7s %12s %12s %9s %7s %7s %7s %6s\n",
		"strangers", "nodes", "delta", "full", "incremental", "speedup", "pools", "reused", "rerun", "ident")

	ctx := context.Background()
	for _, n := range sizes {
		study, o, err := incrStudy(n, seed)
		if err != nil {
			return fmt.Errorf("generate %d: %w", n, err)
		}
		ann := active.Infallible(o)
		cfg := core.DefaultConfig()
		cfg.Workers = workers

		prior, err := core.New(cfg).RunOwner(ctx, study.Graph, study.Profiles, o.ID, ann, o.Confidence)
		if err != nil {
			return fmt.Errorf("baseline at %d: %w", n, err)
		}

		for round, d := range deltas {
			batch := incrBatch(prior, study.Graph, o.ID, d, round)
			if err := batch.Validate(); err != nil {
				return err
			}
			if err := batch.Apply(study.Graph, study.Profiles); err != nil {
				return err
			}

			fullStart := time.Now()
			ref, err := core.New(cfg).RunOwner(ctx, study.Graph, study.Profiles, o.ID, ann, o.Confidence)
			if err != nil {
				return fmt.Errorf("full recompute at %d/%d: %w", n, d, err)
			}
			fullT := time.Since(fullStart)

			incrStart := time.Now()
			revised, st, err := delta.Revise(ctx, cfg, study.Graph, study.Profiles, o.ID, ann, o.Confidence, prior, batch)
			if err != nil {
				return fmt.Errorf("revise at %d/%d: %w", n, d, err)
			}
			incrT := time.Since(incrStart)

			ident := core.DiffRuns(ref, revised) == ""
			row := incrRow{
				Strangers:   n,
				Nodes:       study.Graph.NumNodes(),
				DeltaSize:   len(batch),
				FullMS:      float64(fullT.Microseconds()) / 1000,
				IncrMS:      float64(incrT.Microseconds()) / 1000,
				PoolsTotal:  st.PoolsTotal,
				PoolsReused: st.PoolsReused,
				PoolsRerun:  st.PoolsRerun,
				ByteIdent:   ident,
			}
			if incrT > 0 {
				row.Speedup = row.FullMS / row.IncrMS
			}
			identCell := "yes"
			if !ident {
				identCell = "NO"
			}
			fmt.Printf("%10d %8d %7d %12s %12s %8.1fx %7d %7d %7d %6s\n",
				n, row.Nodes, row.DeltaSize, fullT.Round(time.Millisecond), incrT.Round(time.Millisecond),
				row.Speedup, row.PoolsTotal, row.PoolsReused, row.PoolsRerun, identCell)
			bench.Rows = append(bench.Rows, row)
			if !ident {
				return fmt.Errorf("incremental at %d strangers / %d updates: revised run differs from full recompute: %s",
					n, d, core.DiffRuns(ref, revised))
			}
			prior = ref // the next batch revises against the post-batch state
		}
	}

	out, err := os.Create(outPath)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(bench); err != nil {
		out.Close()
		return err
	}
	if err := out.Close(); err != nil {
		return err
	}
	fmt.Printf("riskbench: wrote %s (%d rows)\n", outPath, len(bench.Rows))
	return nil
}

// auditIncremental is the incremental leg of -audit mode: one mixed
// update batch applied to a small study, then per worker count a full
// recompute diffed against delta.Revise on the same graph. Returns the
// pool count observed per run and a divergence description ("" on
// pass).
func auditIncremental(seed int64) (int, string, error) {
	study, o, err := incrStudy(300, seed)
	if err != nil {
		return 0, "", err
	}
	ann := active.Infallible(o)
	base := core.DefaultConfig()
	prior, err := core.New(base).RunOwner(context.Background(), study.Graph, study.Profiles, o.ID, ann, o.Confidence)
	if err != nil {
		return 0, "", err
	}
	batch := incrBatch(prior, study.Graph, o.ID, 6, 0)
	if err := batch.Apply(study.Graph, study.Profiles); err != nil {
		return 0, "", err
	}
	pools := 0
	for _, w := range []int{1, 2, 4} {
		cfg := core.DefaultConfig()
		cfg.Workers = w
		ref, err := core.New(cfg).RunOwner(context.Background(), study.Graph, study.Profiles, o.ID, ann, o.Confidence)
		if err != nil {
			return 0, "", fmt.Errorf("workers=%d full: %w", w, err)
		}
		revised, st, err := delta.Revise(context.Background(), cfg, study.Graph, study.Profiles, o.ID, ann, o.Confidence, prior, batch)
		if err != nil {
			return 0, "", fmt.Errorf("workers=%d revise: %w", w, err)
		}
		if d := core.DiffRuns(ref, revised); d != "" {
			return pools, fmt.Sprintf("workers=%d: revised run diverges from full recompute: %s", w, d), nil
		}
		if st.PoolsReused == 0 {
			return pools, fmt.Sprintf("workers=%d: no pools reused — the incremental path was not exercised", w), nil
		}
		pools = st.PoolsTotal
	}
	return pools, "", nil
}
