package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"time"

	"sightrisk/internal/ldp"
	"sightrisk/internal/profile"
)

// ldpRow is one (epsilon, statistic) cell of the ε-vs-accuracy sweep:
// RMS relative error of the visibility-aware release against the
// all-edge baseline, both measured over the same trial epochs with
// common random numbers (the shared private users draw identical
// noise in both modes, so the comparison is paired, not two
// independent Monte Carlo estimates).
type ldpRow struct {
	Epsilon     float64 `json:"epsilon"`
	Stat        string  `json:"stat"`
	VARelErr    float64 `json:"visibility_aware_rel_err"`
	AllRelErr   float64 `json:"all_edge_rel_err"`
	Improvement float64 `json:"improvement"` // all_edge / visibility_aware
}

// ldpBench is the BENCH_ldp.json document.
type ldpBench struct {
	GeneratedAt string   `json:"generated_at"`
	Seed        int64    `json:"seed"`
	Trials      int      `json:"trials"`
	Strangers   int      `json:"strangers"`
	Nodes       int      `json:"nodes"`
	PublicUsers int      `json:"public_users"`
	PublicEdges int      `json:"public_edges"`
	Edges       int64    `json:"edges"`
	Rows        []ldpRow `json:"rows"`
}

// ldpStatNames fixes the statistic order of the sweep table.
var ldpStatNames = []string{"edge_count", "triangles", "2stars", "3stars", "degree_hist", "visibility"}

// ldpErrors maps one release to per-statistic relative errors against
// the exact truth: |estimate-truth|/truth for the scalar counts, L1
// distance over the degree histogram normalised by the node count, and
// mean absolute error over the per-item visibility rates.
func ldpErrors(exact, r *ldp.Report, nodes int) map[string]float64 {
	rel := func(e, x ldp.Estimate) float64 {
		if x.Value == 0 {
			return math.Abs(e.Value)
		}
		return math.Abs(e.Value-x.Value) / x.Value
	}
	histL1 := 0.0
	for i := range r.DegreeHist {
		histL1 += math.Abs(r.DegreeHist[i].Count - exact.DegreeHist[i].Count)
	}
	visMAE := 0.0
	for i := range r.Visibility {
		visMAE += math.Abs(r.Visibility[i].Rate - exact.Visibility[i].Rate)
	}
	visMAE /= float64(len(profile.Items()))
	return map[string]float64{
		"edge_count":  rel(r.EdgeCount, exact.EdgeCount),
		"triangles":   rel(r.Triangles, exact.Triangles),
		"2stars":      rel(r.TwoStars, exact.TwoStars),
		"3stars":      rel(r.ThreeStars, exact.ThreeStars),
		"degree_hist": histL1 / float64(nodes),
		"visibility":  visMAE,
	}
}

// ldpReportBytes renders one release as canonical JSON — the
// reproducibility probe: two computations that would serve different
// /v1/stats bodies produce different bytes here.
func ldpReportBytes(e *ldp.Estimator, p ldp.Params, seed ldp.Seed) ([]byte, error) {
	r, err := e.Report(p, seed)
	if err != nil {
		return nil, err
	}
	return json.Marshal(r)
}

// runLDPBench is -ldp mode: on one synthetic population with the
// generator's realistic visibility mix it sweeps ε over -ldp-eps and,
// per ε, measures the RMS relative error of every released statistic
// over -ldp-trials noise epochs — visibility-aware noise against the
// all-edge baseline. The sweep must show visibility-aware strictly
// more accurate for every statistic at every ε (non-zero exit
// otherwise), the same release identity must reproduce byte-identical
// releases while a fresh epoch, a bumped generation or a different ε
// must not, and two ε at one epoch must not be linearly solvable for
// the exact truth. The table goes to stdout and to outPath.
func runLDPBench(epsSpec string, trials, strangers int, seed int64, outPath string) error {
	var epsilons []float64
	for _, s := range strings.Split(epsSpec, ",") {
		e, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil || e <= 0 {
			return fmt.Errorf("bad -ldp-eps entry %q", s)
		}
		epsilons = append(epsilons, e)
	}
	if trials < 10 {
		return fmt.Errorf("-ldp-trials %d is too few for a stable RMS estimate", trials)
	}

	study, _, err := incrStudy(strangers, seed)
	if err != nil {
		return fmt.Errorf("generate %d: %w", strangers, err)
	}
	est := ldp.NewEstimator(study.Graph.Snapshot(), study.Profiles)
	if est.PublicUsers() == 0 || est.PublicUsers() == est.Nodes() {
		return fmt.Errorf("population has no visibility mix (%d/%d public); the sweep would be vacuous",
			est.PublicUsers(), est.Nodes())
	}
	exact := est.Exact()

	// Reproducibility leg: the same release identity serves identical
	// bytes; a fresh epoch or a bumped dataset generation draws fresh
	// noise.
	p1 := ldp.Params{Epsilon: 1, Mode: ldp.ModeVisibilityAware}
	a, err := ldpReportBytes(est, p1, ldp.SeedFor("bench", "ldp", 1, 0, p1))
	if err != nil {
		return err
	}
	b, err := ldpReportBytes(est, p1, ldp.SeedFor("bench", "ldp", 1, 0, p1))
	if err != nil {
		return err
	}
	c, err := ldpReportBytes(est, p1, ldp.SeedFor("bench", "ldp", 2, 0, p1))
	if err != nil {
		return err
	}
	if string(a) != string(b) {
		return fmt.Errorf("reproducibility: identical release identity produced different releases")
	}
	if string(a) == string(c) {
		return fmt.Errorf("reproducibility: a fresh epoch reproduced the previous noise")
	}
	g, err := ldpReportBytes(est, p1, ldp.SeedFor("bench", "ldp", 1, 1, p1))
	if err != nil {
		return err
	}
	if string(a) == string(g) {
		return fmt.Errorf("reproducibility: a bumped dataset generation reproduced the previous noise")
	}
	// Correlated-noise probe: if two ε at the same epoch shared their
	// standardized draws, T = (ε₁v₁ − ε₂v₂)/(ε₁ − ε₂) would recover the
	// exact edge count (docs/ANALYTICS.md §3). It must not.
	p2 := ldp.Params{Epsilon: 2, Mode: ldp.ModeVisibilityAware}
	r1, err := est.Report(p1, ldp.SeedFor("bench", "ldp", 1, 0, p1))
	if err != nil {
		return err
	}
	r2, err := est.Report(p2, ldp.SeedFor("bench", "ldp", 1, 0, p2))
	if err != nil {
		return err
	}
	recon := (p1.Epsilon*r1.EdgeCount.Value - p2.Epsilon*r2.EdgeCount.Value) / (p1.Epsilon - p2.Epsilon)
	if math.Abs(recon-exact.EdgeCount.Value) < 1e-6 {
		return fmt.Errorf("correlated noise: two-ε reconstruction recovered the exact edge count %g", exact.EdgeCount.Value)
	}

	bench := ldpBench{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Seed:        seed,
		Trials:      trials,
		Strangers:   strangers,
		Nodes:       est.Nodes(),
		PublicUsers: est.PublicUsers(),
		PublicEdges: est.PublicEdges(),
		Edges:       int64(exact.EdgeCount.Value),
	}
	fmt.Printf("riskbench: ldp sweep eps=%v trials=%d strangers=%d nodes=%d public=%d (%d public / %d total friendships)\n",
		epsilons, trials, strangers, bench.Nodes, bench.PublicUsers, bench.PublicEdges, bench.Edges)
	fmt.Printf("%8s %-12s %18s %14s %8s\n", "epsilon", "stat", "visibility-aware", "all-edge", "gain")

	for _, eps := range epsilons {
		rms := map[ldp.Mode]map[string]float64{ldp.ModeVisibilityAware: {}, ldp.ModeAllEdge: {}}
		for mode, acc := range rms {
			for k := 0; k < trials; k++ {
				// One raw seed shared by both modes per trial: the
				// common-random-numbers pairing (noise.go) that makes
				// the strict ordering below deterministic rather than
				// sampled. Only the benchmark may share a seed across
				// parameter combinations — it already holds the exact
				// truth. Served releases derive seeds via ldp.SeedFor,
				// which folds (ε, mode, generation) in precisely so no
				// two wire releases ever share draws.
				r, err := est.Report(ldp.Params{Epsilon: eps, Mode: mode}, ldp.Seed(uint64(k)+1))
				if err != nil {
					return err
				}
				for stat, e := range ldpErrors(exact, r, bench.Nodes) {
					acc[stat] += e * e
				}
			}
			for stat := range acc {
				acc[stat] = math.Sqrt(acc[stat] / float64(trials))
			}
		}
		for _, stat := range ldpStatNames {
			va, all := rms[ldp.ModeVisibilityAware][stat], rms[ldp.ModeAllEdge][stat]
			row := ldpRow{Epsilon: eps, Stat: stat, VARelErr: va, AllRelErr: all}
			if va > 0 {
				row.Improvement = all / va
			}
			fmt.Printf("%8g %-12s %17.4f%% %13.4f%% %7.2fx\n", eps, stat, 100*va, 100*all, row.Improvement)
			bench.Rows = append(bench.Rows, row)
			if va >= all {
				return fmt.Errorf("ldp sweep at eps=%g: visibility-aware %s error %.6f is not below the all-edge baseline %.6f",
					eps, stat, va, all)
			}
		}
	}

	out, err := os.Create(outPath)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(bench); err != nil {
		out.Close()
		return err
	}
	if err := out.Close(); err != nil {
		return err
	}
	fmt.Printf("riskbench: wrote %s (%d rows)\n", outPath, len(bench.Rows))
	return nil
}

// auditLDP is the ldp leg of -audit mode: a small population, and per
// parameter set two independent release computations byte-compared
// (same release identity must reproduce; a fresh epoch or a bumped
// dataset generation must not), plus the correlated-noise probe — two
// ε at one epoch must not be linearly solvable for the exact private
// edge count. Returns the number of releases checked and a divergence
// description ("" on pass).
func auditLDP(seed int64) (int, string, error) {
	study, _, err := incrStudy(300, seed)
	if err != nil {
		return 0, "", err
	}
	est := ldp.NewEstimator(study.Graph.Snapshot(), study.Profiles)
	releases := 0
	for _, p := range []ldp.Params{
		{Epsilon: 0.5, Mode: ldp.ModeVisibilityAware},
		{Epsilon: 1, Mode: ldp.ModeVisibilityAware},
		{Epsilon: 2, Mode: ldp.ModeAllEdge},
	} {
		for epoch := uint64(0); epoch < 3; epoch++ {
			s := ldp.SeedFor("audit", "ldp", epoch, 0, p)
			a, err := ldpReportBytes(est, p, s)
			if err != nil {
				return releases, "", err
			}
			b, err := ldpReportBytes(est, p, s)
			if err != nil {
				return releases, "", err
			}
			if string(a) != string(b) {
				return releases, fmt.Sprintf("eps=%g mode=%s epoch=%d: repeated release is not byte-identical", p.Epsilon, p.Mode, epoch), nil
			}
			next, err := ldpReportBytes(est, p, ldp.SeedFor("audit", "ldp", epoch+100, 0, p))
			if err != nil {
				return releases, "", err
			}
			if string(a) == string(next) {
				return releases, fmt.Sprintf("eps=%g mode=%s epoch=%d: a different epoch reproduced the same noise", p.Epsilon, p.Mode, epoch), nil
			}
			bumped, err := ldpReportBytes(est, p, ldp.SeedFor("audit", "ldp", epoch, 1, p))
			if err != nil {
				return releases, "", err
			}
			if string(a) == string(bumped) {
				return releases, fmt.Sprintf("eps=%g mode=%s epoch=%d: a bumped generation reproduced the same noise", p.Epsilon, p.Mode, epoch), nil
			}
			releases++
		}
	}
	// Correlated-noise probe (docs/ANALYTICS.md §3): with ε folded
	// into the seed, T = (ε₁v₁ − ε₂v₂)/(ε₁ − ε₂) must miss the truth.
	p1 := ldp.Params{Epsilon: 1, Mode: ldp.ModeVisibilityAware}
	p2 := ldp.Params{Epsilon: 2, Mode: ldp.ModeVisibilityAware}
	r1, err := est.Report(p1, ldp.SeedFor("audit", "ldp", 0, 0, p1))
	if err != nil {
		return releases, "", err
	}
	r2, err := est.Report(p2, ldp.SeedFor("audit", "ldp", 0, 0, p2))
	if err != nil {
		return releases, "", err
	}
	truth := est.Exact().EdgeCount.Value
	recon := (p1.Epsilon*r1.EdgeCount.Value - p2.Epsilon*r2.EdgeCount.Value) / (p1.Epsilon - p2.Epsilon)
	if math.Abs(recon-truth) < 1e-6 {
		return releases, fmt.Sprintf("correlated noise: two-ε reconstruction recovered the exact edge count %g", truth), nil
	}
	releases += 2
	return releases, "", nil
}
