// Command riskbench regenerates every table and figure of the paper's
// evaluation (Section IV) on the synthetic study population and prints
// each next to the paper's reported values.
//
// Usage:
//
//	riskbench [-scale small|medium|full|sweep] [-seed N] [-only fig4,table1,...] [-workers N]
//	          [-fault-prob P] [-fault-latency D] [-fault-abandon N] [-fault-seed N] [-fault-retries N]
//	          [-tenants N] [-tenant-rtt D] [-bench-out FILE]
//	          [-serve-rtt] [-serve-out FILE]
//	          [-scale-sizes 10000,...] [-scale-out FILE]
//
// With -tenants N the command switches to fleet-benchmark mode: it
// replicates the study for N tenants, runs every owner through the
// multi-tenant scheduler (internal/fleet) with a shared weight cache
// and batched annotator transport, then re-runs the same jobs
// sequentially, verifies the per-owner reports are byte-identical, and
// writes throughput plus micro-benchmark numbers to BENCH_fleet.json.
//
// With -serve-rtt it benchmarks the serving layer instead: an
// in-process sightd (internal/server) serves every owner over the
// HTTP API — once with the server-side stored annotator, once with the
// owner answering long-polled questions over the wire — verifies the
// served reports byte-identical to in-process serial runs, and writes
// endpoint latency plus per-question round-trip cost to
// BENCH_serve.json.
//
// With -incremental it benchmarks the incremental re-estimation
// engine: per -incr-sizes stranger count it runs one owner to
// completion, then per -incr-deltas batch size applies that many
// graph/profile updates and measures a full recompute against
// delta.Revise on the same post-batch graph. The revised run must be
// byte-identical to the full recompute every time (non-zero exit
// otherwise); the full-vs-incremental speedup curve goes to
// BENCH_incremental.json.
//
// With -advise it benchmarks the pre-acceptance friendship-request
// evaluator behind POST /v1/advise: per -advise-sizes stranger count
// it runs one owner to completion, picks a candidate from the
// stranger list, applies the (owner, candidate) edge to a clone of the
// graph, and measures a full counterfactual recompute against
// delta.Revise riding the prior run. The revision must be
// byte-identical to the full recompute, the rendered advise assessment
// must be byte-identical at workers 1, 2 and 4, and at 10^4 strangers
// and above the counterfactual must be at least 10x faster than the
// full recompute (non-zero exit otherwise); the speedup table goes to
// BENCH_advise.json.
//
// With -ldp it benchmarks the differentially private analytics behind
// GET/POST /v1/stats (internal/ldp): on one synthetic population it
// sweeps ε over -ldp-eps and measures, per ε and per released
// statistic, the RMS relative error of the visibility-aware release
// against the all-edge baseline over -ldp-trials noise epochs —
// asserting visibility-aware strictly more accurate for every
// statistic at every ε and that repeated release identities reproduce
// byte-identical releases while fresh epochs, bumped generations and
// different ε draw independent noise (non-zero exit otherwise). The
// sweep goes to BENCH_ldp.json.
//
// With -scale sweep the command runs the million-node scale curve
// instead: per -scale-sizes population it generates a
// SNAP-Facebook-like graph straight into CSR, packs it into a
// graph/snapfile container, measures mmap open against JSON load,
// runs the benchmark owners off the mapped pages, asserts the
// mmap-backed reports byte-identical to in-memory ones at the smaller
// sizes, and writes the curve to BENCH_scale.json. Sizes that do not
// fit in available memory are refused with a clear message instead of
// thrashing.
//
// The full scale matches the paper's population (47 owners, mean 3,661
// strangers each, ~172k stranger profiles) and takes a few minutes;
// small (default) runs in seconds. The -fault-* flags wrap every
// owner's annotator in a seeded fault injector (transient failures,
// latency, mid-session abandonment) so the robustness machinery can be
// exercised against any experiment; the dedicated "faults" step
// reports the retry overhead next to a clean baseline.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
	"time"

	"sightrisk/internal/active"
	"sightrisk/internal/core"
	"sightrisk/internal/experiments"
	"sightrisk/internal/faults"
	"sightrisk/internal/obs"
	"sightrisk/internal/parallel"
	"sightrisk/internal/profile"
	"sightrisk/internal/stats"
	"sightrisk/internal/synthetic"
)

func main() {
	scale := flag.String("scale", "small", "population scale: small, medium or full")
	seed := flag.Int64("seed", 1, "study generation seed")
	only := flag.String("only", "", "comma-separated experiment ids (fig4 fig5 fig6 fig7 headline table1 table2 table3 table4 table5 contrast dynamics robustness faults); empty = all")
	rounds := flag.Int("rounds", 8, "x-axis length for fig5/fig6")
	ablations := flag.Bool("ablations", false, "also run the DESIGN.md §5 ablations (classifiers, alpha, beta, stopping rule, weight exponent, Squeezer weights, pool strategy)")
	workers := flag.Int("workers", 0, "concurrent per-pool workers in the risk engine (0 = one per CPU, 1 = serial legacy path)")
	times := flag.Bool("times", true, "report per-stage wall time")
	faultProb := flag.Float64("fault-prob", 0, "inject transient annotator failures with this per-query probability")
	faultLatency := flag.Duration("fault-latency", 0, "inject this much latency into every annotator answer")
	faultAbandon := flag.Int("fault-abandon", 0, "owners abandon after this many answers per run (0 = never)")
	faultSeed := flag.Int64("fault-seed", 7, "fault-injection seed")
	faultRetries := flag.Int("fault-retries", 10, "retry attempts configured when -fault-prob is set")
	tenants := flag.Int("tenants", 0, "fleet mode: run N tenant replicas through the multi-tenant scheduler and compare against sequential single-owner runs (skips the experiment steps)")
	tenantRTT := flag.Duration("tenant-rtt", 20*time.Millisecond, "fleet mode: simulated annotator round-trip latency (the fleet batches questions across owners into one round-trip; the serial baseline pays it per question); 0 disables the transport")
	benchOut := flag.String("bench-out", "BENCH_fleet.json", "fleet mode: where to write the throughput trajectory JSON")
	traceOut := flag.String("trace-out", "", "write the structured run-event stream (JSONL, one event per line) to this file")
	metricsOut := flag.String("metrics-out", "", "write the per-stage metrics snapshot (JSON) to this file at exit")
	audit := flag.Bool("audit", false, "determinism-audit mode: run the robustness matrix twice per topology with the event auditor attached, plus an mmap-vs-in-memory snapshot-file run, and report the first divergence (skips the experiment steps; non-zero exit on divergence)")
	serveRTT := flag.Bool("serve-rtt", false, "serving-layer mode: stand up an in-process sightd, run every owner through the HTTP API on both the stored and the remote-annotator path, verify the served reports byte-identical to in-process serial runs, and write round-trip numbers to -serve-out (skips the experiment steps)")
	serveOut := flag.String("serve-out", "BENCH_serve.json", "serve mode: where to write the round-trip JSON")
	nodes := flag.String("nodes", "", "cluster mode: comma-separated replica counts (e.g. \"1,2,4\"); per count, run every owner through an in-process N-replica sightd cluster, kill one replica mid-sweep when N > 1, verify the reports byte-identical to the serial run, and write recovery latency plus throughput to -cluster-out (skips the experiment steps)")
	clusterOut := flag.String("cluster-out", "BENCH_cluster.json", "cluster mode: where to write the failover/throughput JSON")
	scaleSizes := flag.String("scale-sizes", "10000,100000,316000,1000000", "scale-sweep mode (-scale sweep): comma-separated population sizes; sizes that do not fit in available memory are skipped with a message")
	scaleOut := flag.String("scale-out", "BENCH_scale.json", "scale-sweep mode: where to write the scale-curve JSON")
	scaleOwners := flag.Int("scale-owners", 4, "scale-sweep mode: benchmark owners per population size")
	incremental := flag.Bool("incremental", false, "incremental mode: per network size, apply update batches of each -incr-deltas size and measure a full recompute against delta.Revise on the same graph, asserting byte-identity; writes the speedup curve to -incr-out (skips the experiment steps)")
	incrSizes := flag.String("incr-sizes", "10000,100000", "incremental mode: comma-separated stranger counts for the owner's network")
	incrDeltas := flag.String("incr-deltas", "1,10,100", "incremental mode: comma-separated update-batch sizes")
	incrOut := flag.String("incr-out", "BENCH_incremental.json", "incremental mode: where to write the speedup-curve JSON")
	advise := flag.Bool("advise", false, "advise mode: per network size, evaluate one pre-acceptance friendship request by full counterfactual recompute and by delta.Revise, asserting byte-identity and the >=10x speedup at 10^4 strangers; writes the table to -advise-out (skips the experiment steps)")
	adviseSizes := flag.String("advise-sizes", "2000,10000", "advise mode: comma-separated stranger counts for the owner's network")
	adviseOut := flag.String("advise-out", "BENCH_advise.json", "advise mode: where to write the speedup JSON")
	ldpMode := flag.Bool("ldp", false, "ldp mode: sweep ε over -ldp-eps and measure the RMS relative error of every /v1/stats statistic under visibility-aware noise against the all-edge baseline, asserting visibility-aware strictly more accurate everywhere plus seeded reproducibility; writes the sweep to -ldp-out (skips the experiment steps)")
	ldpEps := flag.String("ldp-eps", "0.5,1,2,4", "ldp mode: comma-separated ε values for the accuracy sweep")
	ldpTrials := flag.Int("ldp-trials", 200, "ldp mode: noise epochs per (ε, mode) cell of the sweep")
	ldpStrangers := flag.Int("ldp-strangers", 2000, "ldp mode: strangers in the synthetic population")
	ldpOut := flag.String("ldp-out", "BENCH_ldp.json", "ldp mode: where to write the ε-vs-accuracy JSON")
	flag.Parse()

	if *ldpMode {
		if err := runLDPBench(*ldpEps, *ldpTrials, *ldpStrangers, *seed, *ldpOut); err != nil {
			fmt.Fprintln(os.Stderr, "riskbench:", err)
			os.Exit(1)
		}
		return
	}

	if *advise {
		if err := runAdviseBench(*adviseSizes, *seed, parallel.ResolveWorkers(*workers), *adviseOut); err != nil {
			fmt.Fprintln(os.Stderr, "riskbench:", err)
			os.Exit(1)
		}
		return
	}

	if *incremental {
		if err := runIncrementalBench(*incrSizes, *incrDeltas, *seed, parallel.ResolveWorkers(*workers), *incrOut); err != nil {
			fmt.Fprintln(os.Stderr, "riskbench:", err)
			os.Exit(1)
		}
		return
	}

	if *scale == "sweep" {
		if err := runScaleBench(*scaleSizes, *seed, *workers, *scaleOwners, *scaleOut); err != nil {
			fmt.Fprintln(os.Stderr, "riskbench:", err)
			os.Exit(1)
		}
		return
	}

	if *nodes != "" {
		if err := runClusterBench(*scale, *seed, *workers, *nodes, *clusterOut); err != nil {
			fmt.Fprintln(os.Stderr, "riskbench:", err)
			os.Exit(1)
		}
		return
	}

	if *serveRTT {
		if err := runServeBench(*scale, *seed, *workers, *serveOut); err != nil {
			fmt.Fprintln(os.Stderr, "riskbench:", err)
			os.Exit(1)
		}
		return
	}

	if *audit {
		if err := runAudit(*seed, *workers); err != nil {
			fmt.Fprintln(os.Stderr, "riskbench:", err)
			os.Exit(1)
		}
		return
	}

	if *tenants > 0 {
		if err := runFleetBench(*scale, *seed, *tenants, *workers, *tenantRTT, *benchOut); err != nil {
			fmt.Fprintln(os.Stderr, "riskbench:", err)
			os.Exit(1)
		}
		return
	}

	start := time.Now()
	env, err := buildEnv(*scale, *seed, *workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "riskbench:", err)
		os.Exit(1)
	}
	var metrics *obs.Metrics
	if *metricsOut != "" {
		metrics = &obs.Metrics{}
		metrics.Publish("sightrisk")
		env.Cfg.Metrics = metrics
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "riskbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		tracer := obs.NewTracer(f)
		env.Cfg.Observer = tracer
		defer func() {
			if err := tracer.Err(); err != nil {
				fmt.Fprintln(os.Stderr, "riskbench: trace:", err)
			}
		}()
	}
	defer func() {
		if metrics == nil {
			return
		}
		f, err := os.Create(*metricsOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "riskbench:", err)
			return
		}
		defer f.Close()
		if err := metrics.WriteJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, "riskbench: metrics:", err)
		}
	}()
	if *faultProb > 0 || *faultLatency > 0 || *faultAbandon > 0 {
		fcfg := faults.Config{
			Seed:         *faultSeed,
			FailProb:     *faultProb,
			Latency:      *faultLatency,
			AbandonAfter: *faultAbandon,
		}
		if err := fcfg.Validate(); err != nil {
			fmt.Fprintln(os.Stderr, "riskbench:", err)
			os.Exit(1)
		}
		if *faultProb > 0 {
			env.Cfg.Retry = active.RetryPolicy{
				MaxAttempts: *faultRetries,
				BaseDelay:   time.Microsecond,
				MaxDelay:    10 * time.Microsecond,
			}
		}
		wrapped := 0
		env.Wrap = func(a active.FallibleAnnotator) active.FallibleAnnotator {
			cfg := fcfg
			cfg.Seed = *faultSeed + int64(wrapped)
			wrapped++
			inj, err := faults.Wrap(a, cfg)
			if err != nil {
				return a // validated above; unreachable
			}
			return inj
		}
		fmt.Printf("riskbench: fault injection on (prob=%g latency=%v abandon=%d seed=%d retries=%d)\n",
			*faultProb, *faultLatency, *faultAbandon, *faultSeed, *faultRetries)
	}
	stage := func(id string, since time.Time) {
		if *times {
			fmt.Printf("riskbench: %-10s %10s  (workers=%d)\n", id, time.Since(since).Round(time.Millisecond), parallel.ResolveWorkers(*workers))
		}
	}
	stage("generate", start)

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToLower(id))] = true
		}
	}
	enabled := func(id string) bool { return len(want) == 0 || want[id] }

	fmt.Printf("riskbench: scale=%s seed=%d owners=%d strangers=%d (mean %.0f/owner)\n\n",
		*scale, *seed, len(env.Study.Owners), env.Study.TotalStrangers(), env.Study.MeanStrangers())

	type step struct {
		id  string
		run func(*experiments.Env) error
	}
	steps := []step{
		{"fig4", printFig4},
		{"headline", printHeadline},
		{"fig5", func(e *experiments.Env) error { return printFig5(e, *rounds) }},
		{"fig6", func(e *experiments.Env) error { return printFig6(e, *rounds) }},
		{"fig7", printFig7},
		{"table1", printTable1},
		{"table2", printTable2},
		{"table3", printTable3},
		{"table4", printTable4},
		{"table5", printTable5},
		{"contrast", printContrast},
		{"dynamics", printDynamics},
		{"robustness", func(e *experiments.Env) error { return printRobustness(*scale, *seed, *workers) }},
		{"faults", printFaults},
	}
	for _, s := range steps {
		if !enabled(s.id) {
			continue
		}
		stepStart := time.Now()
		if err := s.run(env); err != nil {
			fmt.Fprintf(os.Stderr, "riskbench: %s: %v\n", s.id, err)
			os.Exit(1)
		}
		stage(s.id, stepStart)
	}

	if *ablations {
		ablStart := time.Now()
		if err := printAblations(env); err != nil {
			fmt.Fprintln(os.Stderr, "riskbench: ablations:", err)
			os.Exit(1)
		}
		stage("ablations", ablStart)
	}
	stage("total", start)
}

func printContrast(e *experiments.Env) error {
	rows, err := experiments.PrivacyScoreContrast(e)
	if err != nil {
		return err
	}
	t := stats.NewTable("Privacy-score contrast — Liu & Terzi [29] privacy scores vs this paper's risk labels (§V related work, quantified)",
		"signal", "mean corr", "mean |corr|")
	for _, r := range rows {
		t.AddRow(r.Signal, fmtNaN(r.MeanCorr, "%+.3f"), fmtNaN(r.MeanAbsCorr, "%.3f"))
	}
	fmt.Println(t)
	return nil
}

func printRobustness(scale string, seed int64, workers int) error {
	// Robustness builds its own (smaller) populations per topology, so
	// it always runs at a bounded scale regardless of -scale.
	cfg := synthetic.SmallStudyConfig()
	cfg.Owners = 6
	cfg.Seed = seed
	coreCfg := core.DefaultConfig()
	coreCfg.Workers = workers
	rows, err := experiments.Robustness(cfg, coreCfg)
	if err != nil {
		return err
	}
	_ = scale
	t := stats.NewTable("Robustness — headline results across friend-graph topologies",
		"topology", "group-1 share", "max NSG group", "exact match", "rounds", "labels/owner")
	for _, r := range rows {
		t.AddRow(r.Topology, stats.Pct(r.Group1Share), fmt.Sprintf("%d", r.MaxOccupiedGroup),
			stats.Pct(r.ExactMatch), fmtNaN(r.MeanRounds, "%.2f"), fmtNaN(r.MeanLabels, "%.1f"))
	}
	fmt.Println(t)
	return nil
}

// runAudit is -audit mode: the determinism auditor over the same
// configuration printRobustness uses, two full runs per topology
// diffed event by event, plus the snapfile leg (the same owners off
// in-memory arrays vs mmap'd pages). Exits non-zero on any divergence.
func runAudit(seed int64, workers int) error {
	cfg := synthetic.SmallStudyConfig()
	cfg.Owners = 6
	cfg.Seed = seed
	coreCfg := core.DefaultConfig()
	coreCfg.Workers = workers
	verdicts, err := experiments.AuditRobustness(cfg, coreCfg)
	if err != nil {
		return err
	}
	diverged := false
	for _, v := range verdicts {
		status := "PASS"
		if !v.Passed {
			status = "DIVERGED"
			diverged = true
		}
		fmt.Printf("audit %-12s %-8s (%d events per run)\n", v.Topology, status, v.Events)
		if v.Detail != "" {
			for _, line := range strings.Split(v.Detail, "\n") {
				fmt.Println("  " + line)
			}
		}
	}
	events, detail, err := auditSnapfile(seed, workers)
	if err != nil {
		return fmt.Errorf("snapfile audit: %w", err)
	}
	status := "PASS"
	if detail != "" {
		status = "DIVERGED"
		diverged = true
	}
	fmt.Printf("audit %-12s %-8s (%d events per run, mmap vs in-memory)\n", "snapfile", status, events)
	if detail != "" {
		for _, line := range strings.Split(detail, "\n") {
			fmt.Println("  " + line)
		}
	}
	cpCount, cDetail, err := auditCluster(seed, workers)
	if err != nil {
		return fmt.Errorf("cluster audit: %w", err)
	}
	status = "PASS"
	if cDetail != "" {
		status = "DIVERGED"
		diverged = true
	}
	fmt.Printf("audit %-12s %-8s (%d checkpoints observed, 2-node failover vs single-node)\n", "cluster", status, cpCount)
	if cDetail != "" {
		for _, line := range strings.Split(cDetail, "\n") {
			fmt.Println("  " + line)
		}
	}
	iPools, iDetail, err := auditIncremental(seed)
	if err != nil {
		return fmt.Errorf("incremental audit: %w", err)
	}
	status = "PASS"
	if iDetail != "" {
		status = "DIVERGED"
		diverged = true
	}
	fmt.Printf("audit %-12s %-8s (%d pools per run, revision vs full recompute at workers 1/2/4)\n", "incremental", status, iPools)
	if iDetail != "" {
		for _, line := range strings.Split(iDetail, "\n") {
			fmt.Println("  " + line)
		}
	}
	aPools, aDetail, err := auditAdvise(seed)
	if err != nil {
		return fmt.Errorf("advise audit: %w", err)
	}
	status = "PASS"
	if aDetail != "" {
		status = "DIVERGED"
		diverged = true
	}
	fmt.Printf("audit %-12s %-8s (%d pools per run, counterfactual vs full recompute at workers 1/2/4)\n", "advise", status, aPools)
	if aDetail != "" {
		for _, line := range strings.Split(aDetail, "\n") {
			fmt.Println("  " + line)
		}
	}
	lReleases, lDetail, err := auditLDP(seed)
	if err != nil {
		return fmt.Errorf("ldp audit: %w", err)
	}
	status = "PASS"
	if lDetail != "" {
		status = "DIVERGED"
		diverged = true
	}
	fmt.Printf("audit %-12s %-8s (%d releases checked: replays identical; fresh epochs, generations and ε independent)\n", "ldp", status, lReleases)
	if lDetail != "" {
		for _, line := range strings.Split(lDetail, "\n") {
			fmt.Println("  " + line)
		}
	}
	if diverged {
		return fmt.Errorf("determinism audit failed")
	}
	fmt.Println("determinism audit passed: both runs of every topology were bit-identical, mmap-backed estimates matched in-memory ones bit for bit, the post-failover cluster report matched the single-node run byte for byte, incremental revisions matched full recomputes at every worker count, the advise counterfactual matched its full recompute byte for byte at every worker count, and repeated differentially private releases reproduced byte for byte while fresh epochs, bumped generations and different ε all drew independent noise")
	return nil
}

func printFaults(e *experiments.Env) error {
	rows, err := experiments.FaultOverhead(e, []float64{0.05, 0.2}, active.RetryPolicy{})
	if err != nil {
		return err
	}
	t := stats.NewTable("Fault tolerance — retry overhead under injected annotator flakiness",
		"scenario", "owners", "labels/owner", "failures", "attempts", "partial", "elapsed")
	for _, r := range rows {
		t.AddRow(r.Scenario, fmt.Sprintf("%d", r.Owners), fmtNaN(r.MeanLabels, "%.1f"),
			fmt.Sprintf("%d", r.Failures), fmt.Sprintf("%d", r.Queries),
			fmt.Sprintf("%d", r.Partial), r.Elapsed.Round(time.Millisecond).String())
	}
	fmt.Println(t)
	return nil
}

func printDynamics(e *experiments.Env) error {
	// Dynamics mutates the study graph, so it runs last when enabled
	// alongside other experiments (steps list order) and only against
	// the first owner.
	rows, err := experiments.Dynamics(e, 0, 4, len(e.Study.Owners[0].Strangers()))
	if err != nil {
		return err
	}
	t := stats.NewTable("Dynamic graph — churn absorbed by on-the-fly pools (§III motivation)",
		"step", "edges added", "NSG migrations", "label changes", "labels asked", "exact match")
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%d", r.Step), fmt.Sprintf("%d", r.EdgesAdded),
			fmt.Sprintf("%d", r.Migrated), fmt.Sprintf("%d", r.LabelChanges),
			fmt.Sprintf("%d", r.LabelsRequested), stats.Pct(r.ExactMatch))
	}
	fmt.Println(t)
	return nil
}

func printAblations(env *experiments.Env) error {
	suites := []struct {
		title string
		run   func(*experiments.Env) ([]experiments.AblationResult, error)
	}{
		{"Ablation — classifier choice", experiments.AblationClassifiers},
		{"Ablation — pool strategy (NPP vs NSP)", experiments.AblationPoolStrategy},
		{"Ablation — α (network similarity groups)", func(e *experiments.Env) ([]experiments.AblationResult, error) {
			return experiments.AblationAlpha(e, nil)
		}},
		{"Ablation — β (Squeezer threshold)", func(e *experiments.Env) ([]experiments.AblationResult, error) {
			return experiments.AblationBeta(e, nil)
		}},
		{"Ablation — stopping rule components", experiments.AblationStopping},
		{"Ablation — stopping criteria (multi-criteria literature)", experiments.AblationStoppers},
		{"Ablation — sampling strategy", experiments.AblationSamplers},
		{"Ablation — edge-weight exponent", func(e *experiments.Env) ([]experiments.AblationResult, error) {
			return experiments.AblationWeightExponent(e, nil)
		}},
		{"Ablation — Squeezer attribute weights", experiments.AblationSqueezerWeights},
		{"Ablation — network similarity measure", experiments.AblationNetworkMeasure},
	}
	for _, s := range suites {
		rows, err := s.run(env)
		if err != nil {
			return err
		}
		t := stats.NewTable(s.title, "variant", "labels/owner", "rounds", "exact match", "final RMSE")
		for _, r := range rows {
			t.AddRow(r.Name, fmtNaN(r.MeanLabels, "%.1f"), fmtNaN(r.MeanRounds, "%.2f"),
				stats.Pct(r.ExactMatch), fmtNaN(r.MeanRMSE, "%.3f"))
		}
		fmt.Println(t)
	}
	return nil
}

func studyConfig(scale string, seed int64) (synthetic.StudyConfig, error) {
	var cfg synthetic.StudyConfig
	switch scale {
	case "small":
		cfg = synthetic.SmallStudyConfig()
	case "medium":
		cfg = synthetic.DefaultStudyConfig()
		cfg.Owners = 12
		cfg.Ego.Strangers = 1200
	case "full":
		cfg = synthetic.DefaultStudyConfig()
	default:
		return cfg, fmt.Errorf("unknown scale %q", scale)
	}
	cfg.Seed = seed
	return cfg, nil
}

func buildEnv(scale string, seed int64, workers int) (*experiments.Env, error) {
	cfg, err := studyConfig(scale, seed)
	if err != nil {
		return nil, err
	}
	coreCfg := core.DefaultConfig()
	coreCfg.Workers = workers
	return experiments.NewEnv(cfg, coreCfg)
}

func fmtNaN(v float64, format string) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf(format, v)
}

func printFig4(e *experiments.Env) error {
	rows, err := experiments.Fig4(e)
	if err != nil {
		return err
	}
	t := stats.NewTable("Figure 4 — stranger count per network similarity group (paper: skewed low, empty above NS=0.6)",
		"group", "NS range", "strangers", "share")
	for _, r := range rows {
		lo := float64(r.Group-1) / float64(len(rows))
		hi := float64(r.Group) / float64(len(rows))
		t.AddRow(fmt.Sprintf("%d", r.Group), fmt.Sprintf("[%.1f,%.1f)", lo, hi),
			fmt.Sprintf("%d", r.Count), stats.Pct(r.Share))
	}
	fmt.Println(t)
	labels := make([]string, 0, len(rows))
	values := make([]float64, 0, len(rows))
	for _, r := range rows {
		if r.Count == 0 {
			continue
		}
		labels = append(labels, fmt.Sprintf("group %d", r.Group))
		values = append(values, float64(r.Count))
	}
	fmt.Println(stats.BarChart(labels, values, 50, "%.0f"))
	return nil
}

func printHeadline(e *experiments.Env) error {
	h, err := experiments.ComputeHeadline(e)
	if err != nil {
		return err
	}
	t := stats.NewTable("Section IV-C headline results", "metric", "paper", "measured")
	t.AddRow("owners", "47", fmt.Sprintf("%d", h.Owners))
	t.AddRow("mean strangers/owner", "3661", fmt.Sprintf("%.0f", h.MeanStrangers))
	t.AddRow("mean labels/owner", "86", fmtNaN(h.MeanLabels, "%.1f"))
	t.AddRow("mean confidence", "78.39", fmtNaN(h.MeanConfidence, "%.2f"))
	t.AddRow("mean rounds to stabilize", "3.29", fmtNaN(h.MeanRounds, "%.2f"))
	t.AddRow("exact label match", "83.36%", stats.Pct(h.ExactMatchRate))
	t.AddRow("mean final RMSE", "< 0.5", fmtNaN(h.MeanRMSE, "%.3f"))
	fmt.Println(t)
	return nil
}

func printFig5(e *experiments.Env, rounds int) error {
	rows, err := experiments.Fig5(e, rounds)
	if err != nil {
		return err
	}
	t := stats.NewTable("Figure 5 — validation RMSE by round (paper: both decline, NPP below NSP)",
		"round", "NPP RMSE", "NSP RMSE", "NPP sessions", "NSP sessions")
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%d", r.Round), fmtNaN(r.NPP, "%.3f"), fmtNaN(r.NSP, "%.3f"),
			fmt.Sprintf("%d", r.NPPSessions), fmt.Sprintf("%d", r.NSPSessions))
	}
	fmt.Println(t)
	return nil
}

func printFig6(e *experiments.Env, rounds int) error {
	rows, err := experiments.Fig6(e, rounds)
	if err != nil {
		return err
	}
	t := stats.NewTable("Figure 6 — mean unstabilized labels by round (paper: NPP stabilizes faster)",
		"round", "NPP", "NSP")
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%d", r.Round), fmtNaN(r.NPP, "%.2f"), fmtNaN(r.NSP, "%.2f"))
	}
	fmt.Println(t)
	return nil
}

func printFig7(e *experiments.Env) error {
	rows, err := experiments.Fig7(e)
	if err != nil {
		return err
	}
	t := stats.NewTable("Figure 7 — share of very-risky labels per network similarity group (paper: decreasing)",
		"group", "strangers", "very risky")
	var labels []string
	var values []float64
	for _, r := range rows {
		if r.Strangers == 0 {
			continue
		}
		t.AddRow(fmt.Sprintf("%d", r.Group), fmt.Sprintf("%d", r.Strangers), stats.Pct(r.VeryRisky))
		labels = append(labels, fmt.Sprintf("group %d", r.Group))
		values = append(values, 100*r.VeryRisky)
	}
	fmt.Println(t)
	fmt.Println(stats.BarChart(labels, values, 50, "%.1f%%"))
	return nil
}

func printImportance(title string, rows []experiments.ImportanceRow, ranksShown int, paper map[string]float64) {
	header := []string{"name"}
	for i := 0; i < ranksShown; i++ {
		header = append(header, fmt.Sprintf("I%d", i+1))
	}
	header = append(header, "avg imp.", "paper avg")
	t := stats.NewTable(title, header...)
	for _, r := range rows {
		cells := []string{r.Name}
		for i := 0; i < ranksShown && i < len(r.RankCounts); i++ {
			cells = append(cells, fmt.Sprintf("%d", r.RankCounts[i]))
		}
		cells = append(cells, fmt.Sprintf("%.4f", r.AvgImportance))
		if p, ok := paper[r.Name]; ok {
			cells = append(cells, fmt.Sprintf("%.4f", p))
		} else {
			cells = append(cells, "-")
		}
		t.AddRow(cells...)
	}
	fmt.Println(t)
}

func printTable1(e *experiments.Env) error {
	printImportance("Table I — profile attribute importance (paper: gender > locale > last name)",
		experiments.Table1(e), 3,
		map[string]float64{"gender": 0.6231, "locale": 0.3226, "last name": 0.0542})
	return nil
}

func printTable2(e *experiments.Env) error {
	printImportance("Table II — mined importance of benefits (paper: photo first, wall/location last)",
		experiments.Table2(e), 7,
		map[string]float64{
			"photo": 0.27, "education": 0.143, "work": 0.140, "friend": 0.13,
			"hometown": 0.11, "location": 0.092, "wall": 0.091,
		})
	return nil
}

func printTable3(e *experiments.Env) error {
	rows := experiments.Table3(e)
	paper := experiments.PaperTheta()
	t := stats.NewTable("Table III — owner given θ weights", "item", "measured", "paper")
	for _, r := range rows {
		t.AddRow(r.Item, fmt.Sprintf("%.4f", r.AvgTheta), fmt.Sprintf("%.4f", paper[profile.Item(r.Item)]))
	}
	fmt.Println(t)
	return nil
}

func printVisibility(title string, rows []experiments.VisibilityRow, paper map[string]map[profile.Item]float64) {
	header := []string{"slice", "n"}
	for _, item := range profile.Items() {
		header = append(header, string(item))
	}
	t := stats.NewTable(title, header...)
	for _, r := range rows {
		cells := []string{r.Slice, fmt.Sprintf("%d", r.N)}
		for _, item := range profile.Items() {
			cell := stats.Pct(r.Rates[item])
			if p, ok := paper[r.Slice]; ok {
				cell += fmt.Sprintf(" (%.0f%%)", 100*p[item])
			}
			cells = append(cells, cell)
		}
		t.AddRow(cells...)
	}
	fmt.Println(t)
}

func printTable4(e *experiments.Env) error {
	paper := map[string]map[profile.Item]float64{}
	for _, g := range []string{synthetic.GenderMale, synthetic.GenderFemale} {
		paper[g] = map[profile.Item]float64{}
		for _, item := range profile.Items() {
			paper[g][item] = synthetic.PaperGenderVisibility(item, g)
		}
	}
	printVisibility("Table IV — item visibility by gender (measured, paper in parens)", experiments.Table4(e), paper)
	return nil
}

func printTable5(e *experiments.Env) error {
	paper := map[string]map[profile.Item]float64{}
	for _, l := range synthetic.Locales() {
		paper[l] = map[profile.Item]float64{}
		for _, item := range profile.Items() {
			paper[l][item] = synthetic.PaperLocaleVisibility(item, l)
		}
	}
	rows := experiments.Table5(e)
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].N > rows[j].N })
	printVisibility("Table V — item visibility by locale (measured, paper in parens)", rows, paper)
	return nil
}
