// Command sightctl manages risk-estimation studies on disk.
//
// Subcommands:
//
//	sightctl generate -out study.json [-owners N] [-strangers N] [-seed N]
//	    Generate a synthetic study (graph, profiles, owners with
//	    ground-truth labels) and save it as JSON.
//
//	sightctl info -in study.json
//	    Print dataset statistics.
//
//	sightctl pack -in study.json -out study.snap
//	    Pack a JSON study into the binary snapshot container
//	    (internal/graph/snapfile): checksummed CSR arrays plus interned
//	    profiles, opened by sightd and riskbench via mmap with no
//	    parse step.
//
//	sightctl run -in study.json [-owner ID] [-strategy npp|nsp] [-v] [-interactive] [-checkpoint file] [-server URL]
//	    Run the risk-estimation pipeline for one owner (or all owners)
//	    using the stored labels as the annotator — or, with
//	    -interactive, answering the paper's labeling question on the
//	    terminal — and print the resulting risk report. SIGINT/SIGTERM
//	    cancel the run gracefully: the partial report is printed with
//	    per-pool status, and with -checkpoint the session state is on
//	    disk so the same invocation resumes where it stopped. With
//	    -server the same run goes through a sightd server instead: the
//	    network is submitted inline and the annotator answers the
//	    long-polled owner questions over the wire (the serving layer is
//	    deterministic, so the printed report is identical).
//
//	sightctl crawl -in study.json -owner ID [-ticks N] [-failprob P]
//	    Simulate the Sight crawler discovering the owner's strangers
//	    and print progress snapshots, optionally under transient API
//	    failures.
//
//	sightctl tune -in study.json [-owner ID]
//	    Mine pipeline parameters (α, β, Squeezer weights, θ) from the
//	    dataset.
//
//	sightctl export -in study.json [-owner ID] [-out neighborhood.dot]
//	    Write the owner's neighborhood as Graphviz DOT, strangers
//	    colored by their stored risk labels.
//
//	sightctl updates -server URL -dataset NAME [-owner ID] [-file updates.json] [-revise JOBID] [-v]
//	    Apply a batch of graph/profile updates (a JSON array of
//	    {"kind","a","b","attr","value","visible"} records, read from
//	    -file or stdin) to a mutable dataset on a sightd server. With
//	    -revise the batch is applied through the revision endpoint of a
//	    finished estimate and the per-pool report deltas are streamed
//	    as they land — reused pools are marked, so the output shows how
//	    much of the prior run the updates actually invalidated. The
//	    revised report is byte-identical to a from-scratch run against
//	    the updated dataset.
//
//	sightctl advise -server URL -dataset NAME -owner ID -candidate ID [-seed N] [-v]
//	    Evaluate a pending friendship request before accepting it: the
//	    server scores the counterfactual graph with the (owner,
//	    candidate) edge added against the owner's current estimate —
//	    riding the incremental delta engine, so only the pools the new
//	    edge dirties are recomputed — and prints the accept/review/
//	    decline verdict with the before/after risk reach and, with -v,
//	    the per-item exposure table.
//
//	sightctl stats -server URL -dataset NAME [-tenant T] [-epoch N] [-epsilon E] [-noise visibility_aware|all_edge]
//	    Fetch one privacy-preserving statistics release for a dataset:
//	    edge count, degree histogram, triangle and k-star counts and
//	    per-item visibility rates under edge-level local differential
//	    privacy with visibility-aware noise (docs/ANALYTICS.md). The
//	    noise is seeded by the full release identity (tenant, dataset,
//	    epoch, epsilon, noise mode, dataset generation): repeating the
//	    same query re-serves identical numbers without spending more of
//	    the tenant's ε budget, while a new epoch — or any other changed
//	    coordinate — buys a fresh, independent draw.
//
//	sightctl cluster -server n1=URL,n2=URL,...
//	    Print per-replica health for a multi-node sightd cluster: node
//	    id, readiness, ring version, shard ownership and each node's
//	    view of its peers — enough to tell a draining replica from a
//	    dead one at a glance.
//
// Everywhere -server is accepted it takes either one base URL or a
// comma-separated replica list (plain URLs or id=url entries); with
// more than one entry the calls go through the client-side cluster
// router, which retries across replicas and follows failover.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"sightrisk/client"
	"sightrisk/internal/benefit"
	"sightrisk/internal/crawler"
	"sightrisk/internal/dataset"
	"sightrisk/internal/graph"
	"sightrisk/internal/label"
	"sightrisk/internal/profile"
	"sightrisk/internal/prompt"
	"sightrisk/internal/stats"
	"sightrisk/internal/synthetic"

	"sightrisk"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "generate":
		err = cmdGenerate(os.Args[2:])
	case "info":
		err = cmdInfo(os.Args[2:])
	case "pack":
		err = cmdPack(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:])
	case "crawl":
		err = cmdCrawl(os.Args[2:])
	case "tune":
		err = cmdTune(os.Args[2:])
	case "export":
		err = cmdExport(os.Args[2:])
	case "updates":
		err = cmdUpdates(os.Args[2:])
	case "advise":
		err = cmdAdvise(os.Args[2:])
	case "stats":
		err = cmdStats(os.Args[2:])
	case "cluster":
		err = cmdCluster(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "sightctl: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sightctl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: sightctl <command> [flags]

commands:
  generate   generate a synthetic study and save it as JSON
  info       print dataset statistics
  pack       pack a JSON study into an mmap-able .snap snapshot file
  run        run the risk pipeline over a dataset
  crawl      simulate the Sight crawler on a dataset
  tune       mine pipeline parameters (alpha, beta, theta, weights) from a dataset
  export     write an owner's neighborhood as Graphviz DOT, colored by risk label
  updates    apply a graph/profile delta batch to a sightd dataset, optionally revising an estimate
  advise     evaluate a pending friendship request against the counterfactual graph on a sightd server
  stats      fetch a differentially private statistics release for a dataset from a sightd server
  cluster    print per-replica health for a multi-node sightd cluster
`)
}

func cmdGenerate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	out := fs.String("out", "study.json", "output file")
	owners := fs.Int("owners", 8, "number of owners")
	strangers := fs.Int("strangers", 400, "strangers per owner (before jitter)")
	friends := fs.Int("friends", 60, "friends per owner (before jitter)")
	seed := fs.Int64("seed", 1, "generation seed")
	fs.Parse(args)

	cfg := synthetic.DefaultStudyConfig()
	cfg.Owners = *owners
	cfg.Ego.Strangers = *strangers
	cfg.Ego.Friends = *friends
	cfg.Seed = *seed
	study, err := synthetic.GenerateStudy(cfg)
	if err != nil {
		return err
	}
	ds := dataset.FromStudy(study, true)
	if err := ds.Save(*out); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d users, %d friendships, %d owners, %d stranger profiles\n",
		*out, ds.Graph.NumNodes(), ds.Graph.NumEdges(), len(ds.Owners), study.TotalStrangers())
	return nil
}

func cmdInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := fs.String("in", "study.json", "input dataset")
	fs.Parse(args)

	ds, err := dataset.Load(*in)
	if err != nil {
		return err
	}
	deg := ds.Graph.Degrees()
	comps := ds.Graph.ConnectedComponents()
	fmt.Printf("dataset %q\n", ds.Name)
	fmt.Printf("  users        %d\n", ds.Graph.NumNodes())
	fmt.Printf("  friendships  %d\n", ds.Graph.NumEdges())
	fmt.Printf("  degree       min %d / mean %.1f / max %d\n", deg.Min, deg.Mean, deg.Max)
	fmt.Printf("  clustering   %.3f (mean local coefficient)\n", ds.Graph.MeanClusteringCoefficient())
	fmt.Printf("  components   %d (largest %d)\n", len(comps), comps[0])
	fmt.Printf("  profiles     %d\n", len(ds.Profiles))
	fmt.Printf("  owners       %d\n", len(ds.Owners))
	for _, o := range ds.Owners {
		n := len(ds.Graph.Strangers(o.ID))
		fmt.Printf("    owner %-8d strangers %-6d stored labels %-6d confidence %.1f\n",
			o.ID, n, len(o.Labels), o.Confidence)
	}
	return nil
}

func cmdPack(args []string) error {
	fs := flag.NewFlagSet("pack", flag.ExitOnError)
	in := fs.String("in", "study.json", "input JSON dataset")
	out := fs.String("out", "study.snap", "output snapshot file")
	fs.Parse(args)

	ds, err := dataset.Load(*in)
	if err != nil {
		return err
	}
	if err := dataset.PackSnap(ds, *out); err != nil {
		return err
	}
	st, err := os.Stat(*out)
	if err != nil {
		return err
	}
	fmt.Printf("packed %s -> %s: %d users, %d friendships, %d profiles, %d owners, %d bytes\n",
		*in, *out, ds.Graph.NumNodes(), ds.Graph.NumEdges(), len(ds.Profiles), len(ds.Owners), st.Size())
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	in := fs.String("in", "study.json", "input dataset")
	ownerID := fs.Int64("owner", 0, "owner id (0 = all owners)")
	strategy := fs.String("strategy", "npp", "pool strategy: npp or nsp")
	verbose := fs.Bool("v", false, "print per-stranger labels")
	interactive := fs.Bool("interactive", false, "ask for risk labels on the terminal (the Sight experience) instead of using stored labels")
	out := fs.String("out", "", "also write the risk reports as JSON to this file")
	seed := fs.Int64("seed", 1, "sampling seed")
	checkpoint := fs.String("checkpoint", "", "checkpoint file: resumed from when it exists, rewritten after every labeling round (requires -owner)")
	serverURL := fs.String("server", "", "sightd base URL or comma-separated replica list (URLs or id=url): run through the serving layer instead of in-process; the network travels inline and answers are posted over the wire")
	fs.Parse(args)

	if *checkpoint != "" && *ownerID == 0 {
		return fmt.Errorf("-checkpoint requires a single -owner")
	}
	if *checkpoint != "" && *serverURL != "" {
		return fmt.Errorf("-checkpoint is not supported with -server: sightd checkpoints server-side (restart it with the same -state to resume)")
	}
	ds, err := dataset.Load(*in)
	if err != nil {
		return err
	}
	opts := sight.DefaultOptions()
	opts.Seed = *seed
	switch *strategy {
	case "npp":
		opts.Pooling.Strategy = sight.PoolNPP
	case "nsp":
		opts.Pooling.Strategy = sight.PoolNSP
	default:
		return fmt.Errorf("unknown strategy %q", *strategy)
	}
	net := sight.WrapNetwork(ds.Graph, ds.ProfileStore())

	// Remote mode: the same per-owner loop, but each estimate runs on a
	// sightd server — the dataset's network travels inline and the
	// annotator (stored labels or the terminal) answers the long-polled
	// questions from here. Serving is deterministic, so the reports are
	// identical to the in-process ones.
	var (
		remote  estimateAPI
		payload *client.NetworkPayload
	)
	if *serverURL != "" {
		remote, err = dialServers(*serverURL)
		if err != nil {
			return err
		}
		payload = client.NetworkFrom(net)
	}

	// SIGINT/SIGTERM cancel the run at the next query boundary; the
	// pipeline degrades to a partial report instead of dying mid-round.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	owners := ds.OwnerIDs()
	if *ownerID != 0 {
		owners = []graph.UserID{graph.UserID(*ownerID)}
	}
	store := ds.ProfileStore()
	var reports []*sight.Report
	for _, id := range owners {
		rec, ok := ds.Owner(id)
		if !ok {
			return fmt.Errorf("owner %d not in dataset", id)
		}
		opts.Learning.Confidence = rec.Confidence
		var ann sight.Annotator = dataset.StoredAnnotator{Labels: rec.Labels, Fallback: label.Risky}
		if *interactive {
			theta := make(benefit.Theta, len(rec.Theta))
			for item, w := range rec.Theta {
				theta[profile.Item(item)] = w
			}
			if len(theta) == 0 {
				theta = nil
			}
			ann = prompt.New(os.Stdin, os.Stdout, ds.Graph, store, id, theta)
		}
		opts.Checkpointing.Sink, opts.Checkpointing.Resume = nil, nil
		if *checkpoint != "" {
			path := *checkpoint
			if _, statErr := os.Stat(path); statErr == nil {
				cp, err := sight.LoadCheckpoint(path)
				if err != nil {
					return err
				}
				opts.Checkpointing.Resume = cp
				fmt.Printf("resuming owner %d from %s (%d pools checkpointed)\n", id, path, len(cp.Pools))
			}
			// The sink persists after every round, so the file always
			// holds the latest completed state — nothing extra to do on
			// a signal.
			opts.Checkpointing.Sink = func(c *sight.Checkpoint) error {
				return sight.SaveCheckpoint(path, c)
			}
		}
		var rep *sight.Report
		if remote != nil {
			rep, err = runRemote(ctx, remote, payload, id, rec.Confidence, *strategy, *seed, ann)
		} else {
			rep, err = sight.EstimateRisk(ctx, net, id, ann, opts)
		}
		if err != nil {
			return err
		}
		printReport(rep, rec, *verbose)
		if rep.Partial && *checkpoint != "" {
			fmt.Printf("  checkpoint saved to %s — rerun the same command to resume\n", *checkpoint)
		}
		reports = append(reports, rep)
		if ctx.Err() != nil {
			fmt.Println("interrupted — stopping after the current owner")
			break
		}
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %d report(s) to %s\n", len(reports), *out)
	}
	return nil
}

// estimateAPI is the slice of the client surface cmdRun needs — both
// *client.Client (one server) and *client.Cluster (a replica set with
// client-side failover) implement it.
type estimateAPI interface {
	Submit(ctx context.Context, req *client.EstimateRequest) (*client.EstimateStatus, error)
	Drive(ctx context.Context, id string, answer client.AnswerFunc) (*client.Report, error)
	Cancel(ctx context.Context, id string) error
	Wait(ctx context.Context, id string) (*client.EstimateStatus, error)
}

// parseServerNodes parses a -server value: one or more comma-separated
// entries, each a plain base URL or an id=url pair. Plain URLs get
// positional ids (node1, node2, ...) — they only matter for the
// client's affinity bookkeeping and the health table.
func parseServerNodes(spec string) ([]client.ClusterNode, error) {
	var nodes []client.ClusterNode
	for i, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		id, url, ok := strings.Cut(entry, "=")
		if !ok || strings.Contains(id, "/") { // a bare URL may hold '=' in a query
			id, url = fmt.Sprintf("node%d", i+1), entry
		}
		nodes = append(nodes, client.ClusterNode{ID: id, URL: strings.TrimSuffix(url, "/")})
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("-server %q names no servers", spec)
	}
	return nodes, nil
}

// dialServers turns a -server value into a client: a plain *Client for
// a single entry, the cluster router for a replica list.
func dialServers(spec string) (estimateAPI, error) {
	nodes, err := parseServerNodes(spec)
	if err != nil {
		return nil, err
	}
	if len(nodes) == 1 {
		return client.New(nodes[0].URL), nil
	}
	return client.NewCluster(nodes)
}

// runRemote runs one owner's estimate through a sightd server: submit
// the inline network, long-poll the owner questions, answer each from
// ann (stored labels or the interactive prompt), and convert the wire
// report back to the library form. A local interrupt cancels the
// server-side job and collects the partial report it degrades to —
// the same graceful shape as the in-process path.
func runRemote(ctx context.Context, c estimateAPI, payload *client.NetworkPayload, owner graph.UserID, confidence float64, strategy string, seed int64, ann sight.Annotator) (*sight.Report, error) {
	st, err := c.Submit(ctx, &client.EstimateRequest{
		Network: payload,
		Owner:   int64(owner),
		Options: &client.OptionsPayload{
			Seed:       &seed,
			Strategy:   &strategy,
			Confidence: &confidence,
		},
	})
	if err != nil {
		return nil, err
	}
	rep, err := c.Drive(ctx, st.ID, func(stranger int64) (int, error) {
		return int(ann.LabelStranger(graph.UserID(stranger))), nil
	})
	if err == nil {
		return rep.Sight(), nil
	}
	if ctx.Err() == nil {
		return nil, err
	}
	cctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := c.Cancel(cctx, st.ID); err != nil {
		return nil, err
	}
	fin, err := c.Wait(cctx, st.ID)
	if err != nil {
		return nil, err
	}
	if fin.Status != client.StatusDone || fin.Report == nil {
		return nil, fmt.Errorf("canceled job %s ended %q: %v", st.ID, fin.Status, fin.Error)
	}
	return fin.Report.Sight(), nil
}

func printReport(rep *sight.Report, rec dataset.OwnerRecord, verbose bool) {
	counts := rep.CountByLabel()
	fmt.Printf("owner %d: %d strangers in %d pools; %d labels requested (%.1f%% of strangers)\n",
		rep.Owner, len(rep.Strangers), rep.Pools, rep.LabelsRequested,
		100*float64(rep.LabelsRequested)/float64(max(1, len(rep.Strangers))))
	fmt.Printf("  labels: not risky %d / risky %d / very risky %d\n",
		counts[sight.NotRisky], counts[sight.Risky], counts[sight.VeryRisky])
	if !math.IsNaN(rep.MeanRounds) {
		fmt.Printf("  mean rounds %.2f, validation exact-match %s\n", rep.MeanRounds, stats.Pct(rep.ExactMatchRate))
	}
	if rep.Partial {
		fallbacks := 0
		for _, sr := range rep.Strangers {
			if sr.Fallback {
				fallbacks++
			}
		}
		fmt.Printf("  PARTIAL RUN (%v): %d strangers carry fallback labels\n", rep.Interrupt, fallbacks)
		pools := make([]string, 0, len(rep.PoolStatus))
		for p := range rep.PoolStatus {
			pools = append(pools, p)
		}
		sort.Strings(pools)
		for _, p := range pools {
			fmt.Printf("    pool %-14s %s\n", p, rep.PoolStatus[p])
		}
	}
	if len(rec.Labels) > 0 {
		agree, total := 0, 0
		for _, sr := range rep.Strangers {
			if want, ok := rec.Labels[sr.User]; ok {
				total++
				if want == sr.Label {
					agree++
				}
			}
		}
		if total > 0 {
			fmt.Printf("  agreement with stored ground truth: %s (%d/%d)\n",
				stats.Pct(float64(agree)/float64(total)), agree, total)
		}
	}
	if verbose {
		for _, sr := range rep.Strangers {
			marker := " "
			switch {
			case sr.OwnerLabeled:
				marker = "*"
			case sr.Fallback:
				marker = "~"
			}
			fmt.Printf("    %s stranger %-8d NS=%.3f pool=%-14s %s\n",
				marker, sr.User, sr.NetworkSimilarity, sr.Pool, sr.Label)
		}
	}
}

func cmdCrawl(args []string) error {
	fs := flag.NewFlagSet("crawl", flag.ExitOnError)
	in := fs.String("in", "study.json", "input dataset")
	ownerID := fs.Int64("owner", 0, "owner id (default: first owner)")
	ticks := fs.Int("ticks", 200, "ticks to simulate")
	every := fs.Int("report", 25, "print a snapshot every N ticks")
	failProb := fs.Float64("failprob", 0, "per-API-call transient failure probability in [0,1]")
	retries := fs.Int("retries", 2, "retry budget per tick for failed API calls")
	fs.Parse(args)

	ds, err := dataset.Load(*in)
	if err != nil {
		return err
	}
	id := graph.UserID(*ownerID)
	if id == 0 {
		ids := ds.OwnerIDs()
		if len(ids) == 0 {
			return fmt.Errorf("dataset has no owners")
		}
		id = ids[0]
	}
	ccfg := crawler.DefaultConfig()
	ccfg.FailureProb = *failProb
	ccfg.RetryBudgetPerTick = *retries
	c, err := crawler.New(ds.Graph, ds.ProfileStore(), id, ccfg)
	if err != nil {
		return err
	}
	fmt.Printf("crawling owner %d (%d true strangers)\n", id, len(ds.Graph.Strangers(id)))
	for t := 1; t <= *ticks; t++ {
		c.Tick()
		if t%*every == 0 || t == *ticks {
			st := c.Stats()
			fmt.Printf("  tick %-5d discovered %-6d pending %-5d api calls %-6d failures %-5d coverage %s\n",
				st.Ticks, st.Discovered, st.Pending, st.APICalls, st.Failures, stats.Pct(st.Coverage))
		}
	}
	return nil
}

func cmdExport(args []string) error {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	in := fs.String("in", "study.json", "input dataset")
	ownerID := fs.Int64("owner", 0, "owner id (default: first owner)")
	out := fs.String("out", "neighborhood.dot", "output DOT file")
	maxNodes := fs.Int("max", 400, "node cap for the export (0 = no cap)")
	fs.Parse(args)

	ds, err := dataset.Load(*in)
	if err != nil {
		return err
	}
	id := graph.UserID(*ownerID)
	if id == 0 {
		ids := ds.OwnerIDs()
		if len(ids) == 0 {
			return fmt.Errorf("dataset has no owners")
		}
		id = ids[0]
	}
	rec, ok := ds.Owner(id)
	if !ok {
		return fmt.Errorf("owner %d not in dataset", id)
	}
	// Color nodes by stored risk label; the owner is gold, friends grey.
	highlight := map[graph.UserID]string{id: "gold"}
	for _, f := range ds.Graph.Friends(id) {
		highlight[f] = "lightgrey"
	}
	colors := map[label.Label]string{
		label.NotRisky:  "palegreen",
		label.Risky:     "orange",
		label.VeryRisky: "tomato",
	}
	for s, l := range rec.Labels {
		if c, ok := colors[l]; ok {
			highlight[s] = c
		}
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	opts := graph.DOTOptions{
		Name:      fmt.Sprintf("owner-%d", id),
		Highlight: highlight,
		Label:     map[graph.UserID]string{id: "owner"},
		MaxNodes:  *maxNodes,
	}
	if err := ds.Graph.WriteDOT(f, opts); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s (owner gold, friends grey, strangers colored by stored risk label)\n", *out)
	return nil
}

func cmdTune(args []string) error {
	fs := flag.NewFlagSet("tune", flag.ExitOnError)
	in := fs.String("in", "study.json", "input dataset")
	ownerID := fs.Int64("owner", 0, "owner id (default: first owner)")
	fs.Parse(args)

	ds, err := dataset.Load(*in)
	if err != nil {
		return err
	}
	id := graph.UserID(*ownerID)
	if id == 0 {
		ids := ds.OwnerIDs()
		if len(ids) == 0 {
			return fmt.Errorf("dataset has no owners")
		}
		id = ids[0]
	}
	rec, ok := ds.Owner(id)
	if !ok {
		return fmt.Errorf("owner %d not in dataset", id)
	}
	net := sight.WrapNetwork(ds.Graph, ds.ProfileStore())
	prior := make(map[sight.UserID]sight.Label, len(rec.Labels))
	for u, l := range rec.Labels {
		prior[u] = l
	}
	tuned, err := sight.TuneParameters(net, id, prior)
	if err != nil {
		return err
	}
	fmt.Printf("mined parameters for owner %d (paper defaults: alpha=10, beta=0.4):\n", id)
	fmt.Printf("  alpha  %d\n", tuned.Alpha)
	fmt.Printf("  beta   %.1f\n", tuned.Beta)
	if len(tuned.SqueezerWeights) > 0 {
		fmt.Println("  squeezer weights (IGR-mined from stored labels):")
		for _, a := range []string{sight.AttrGender, sight.AttrLocale, sight.AttrLastName} {
			fmt.Printf("    %-10s %.4f\n", a, tuned.SqueezerWeights[a])
		}
	}
	fmt.Println("  system-suggested theta (scarcity-priced):")
	items := make([]string, 0, len(tuned.Theta))
	for item := range tuned.Theta {
		items = append(items, item)
	}
	sort.Slice(items, func(i, j int) bool { return tuned.Theta[items[i]] > tuned.Theta[items[j]] })
	for _, item := range items {
		fmt.Printf("    %-10s %.4f\n", item, tuned.Theta[item])
	}
	return nil
}

func cmdUpdates(args []string) error {
	fs := flag.NewFlagSet("updates", flag.ExitOnError)
	serverURL := fs.String("server", "", "sightd base URL (or replica list; the first entry is dialed — the server forwards to the ring owner)")
	dsName := fs.String("dataset", "", "dataset name on the server (required unless -revise)")
	ownerID := fs.Int64("owner", 0, "owner id the batch routes by in cluster mode")
	file := fs.String("file", "", "JSON file holding the update array (default: stdin)")
	reviseID := fs.String("revise", "", "finished estimate id: apply the batch through its revision endpoint and stream the report deltas")
	verbose := fs.Bool("v", false, "print per-stranger entries from the delta stream")
	fs.Parse(args)

	if *serverURL == "" {
		return fmt.Errorf("updates needs -server")
	}
	nodes, err := parseServerNodes(*serverURL)
	if err != nil {
		return err
	}
	c := client.New(nodes[0].URL)

	var updates []client.Update
	in := os.Stdin
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	dec := json.NewDecoder(in)
	if err := dec.Decode(&updates); err != nil {
		if *file == "" && errors.Is(err, io.EOF) && *reviseID != "" {
			updates = nil // pure revision: no batch on stdin is fine
		} else {
			return fmt.Errorf("decode updates: %w", err)
		}
	}
	if len(updates) == 0 && *reviseID == "" {
		return fmt.Errorf("no updates to apply (and no -revise)")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Without -revise: plain batch application.
	if *reviseID == "" {
		if *dsName == "" {
			return fmt.Errorf("updates needs -dataset")
		}
		resp, err := c.Updates(ctx, &client.UpdatesRequest{Dataset: *dsName, Owner: *ownerID, Updates: updates})
		if err != nil {
			return err
		}
		fmt.Printf("dataset %s: applied %d updates", resp.Dataset, resp.Applied)
		if resp.Node != "" {
			fmt.Printf(" on node %s", resp.Node)
		}
		fmt.Println()
		if len(resp.DirtyOwners) > 0 {
			fmt.Printf("  dirty owners (revise their estimates): %v\n", resp.DirtyOwners)
		} else {
			fmt.Println("  no owner's 2-hop view was reached; standing estimates remain exact")
		}
		return nil
	}

	// With -revise: the batch rides the revision request (applied
	// atomically before the re-estimate), and the per-pool deltas
	// stream back as they land.
	st, err := c.Revise(ctx, *reviseID, &client.ReviseRequest{Updates: updates})
	if err != nil {
		return err
	}
	fmt.Printf("revising %s as %s (%d updates)\n", *reviseID, st.ID, len(updates))
	reused, recomputed := 0, 0
	final, err := c.StreamDeltas(ctx, st.ID, func(d client.PoolDelta) error {
		how := "recomputed"
		if d.Reused {
			how = "reused"
			reused++
		} else {
			recomputed++
		}
		fmt.Printf("  pool %-14s (%d/%d) %-10s %s, %d strangers\n",
			d.Pool, d.Index+1, d.Total, d.Status, how, len(d.Strangers))
		if *verbose {
			for _, sr := range d.Strangers {
				fmt.Printf("      stranger %-8d NS=%.3f label=%d\n", sr.User, sr.NetworkSimilarity, sr.Label)
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	if final.JobStatus != client.StatusDone || final.Report == nil {
		if final.Error != nil {
			return fmt.Errorf("revision %s ended %q: %s", st.ID, final.JobStatus, final.Error.Message)
		}
		return fmt.Errorf("revision %s ended %q", st.ID, final.JobStatus)
	}
	fmt.Printf("revision done: %d pools reused, %d recomputed\n", reused, recomputed)
	printReport(final.Report.Sight(), dataset.OwnerRecord{}, *verbose)
	return nil
}

// adviseAPI is the slice of the client surface cmdAdvise needs — both
// *client.Client and *client.Cluster implement it.
type adviseAPI interface {
	Advise(ctx context.Context, req *client.AdviseRequest) (*client.AdviseResponse, error)
}

func cmdAdvise(args []string) error {
	fs := flag.NewFlagSet("advise", flag.ExitOnError)
	serverURL := fs.String("server", "", "sightd base URL or comma-separated replica list (URLs or id=url); the request routes to the replica owning -owner")
	dsName := fs.String("dataset", "", "dataset name on the server (required; must be mutable)")
	ownerID := fs.Int64("owner", 0, "owner who received the friendship request (required)")
	candID := fs.Int64("candidate", 0, "user asking to become a friend (required)")
	seed := fs.Int64("seed", 1, "sampling seed; match the owner's standing estimate so the server can reuse it")
	verbose := fs.Bool("v", false, "print the per-item exposure table")
	fs.Parse(args)

	if *serverURL == "" || *dsName == "" || *ownerID == 0 || *candID == 0 {
		return fmt.Errorf("advise needs -server, -dataset, -owner and -candidate")
	}
	api, err := dialServers(*serverURL)
	if err != nil {
		return err
	}
	adv, ok := api.(adviseAPI)
	if !ok {
		return fmt.Errorf("internal: %T does not implement advise", api)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	resp, err := adv.Advise(ctx, &client.AdviseRequest{
		Dataset:   *dsName,
		Owner:     *ownerID,
		Candidate: *candID,
		Options:   &client.OptionsPayload{Seed: seed},
	})
	if err != nil {
		return err
	}
	fmt.Printf("owner %d, request from %d: %s\n", resp.Owner, resp.Candidate, strings.ToUpper(resp.Verdict))
	fmt.Printf("  %s\n", resp.Reason)
	fmt.Printf("  candidate: label=%d NS=%.3f\n", resp.Label, resp.NetworkSimilarity)
	fmt.Printf("  stranger view if accepted: +%d new, -%d leave\n", resp.NewStrangers, resp.LostStrangers)
	fmt.Printf("  risky reach %d -> %d, very risky %d -> %d\n",
		resp.RiskyBefore, resp.RiskyAfter, resp.VeryRiskyBefore, resp.VeryRiskyAfter)
	if *verbose {
		fmt.Println("  per-item exposure (policy-admitted strangers):")
		for _, it := range resp.Items {
			access := ""
			if it.GainsAccess {
				access = "  candidate gains access"
			}
			fmt.Printf("    %-10s max_label=%d audience %d -> %d risky %d -> %d%s\n",
				it.Item, it.MaxLabel, it.AudienceBefore, it.AudienceAfter, it.RiskyBefore, it.RiskyAfter, access)
		}
	}
	return nil
}

// statsAPI is the slice of the client surface cmdStats needs — both
// *client.Client and *client.Cluster implement it.
type statsAPI interface {
	Stats(ctx context.Context, req *client.StatsRequest) (*client.StatsResponse, error)
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	serverURL := fs.String("server", "", "sightd base URL or comma-separated replica list (URLs or id=url); the request routes to the replica owning the dataset's ε ledger")
	dsName := fs.String("dataset", "", "dataset name on the server (required)")
	tenant := fs.String("tenant", "", "tenant the release is charged to")
	epoch := fs.Uint64("epoch", 0, "noise epoch: repeating an epoch re-serves identical numbers for free, a new epoch buys a fresh draw")
	epsilon := fs.Float64("epsilon", 0, "per-mechanism privacy budget ε (0 = server default of 1); one release charges 6ε")
	noise := fs.String("noise", "", "noise mode: visibility_aware (default) or all_edge")
	fs.Parse(args)

	if *serverURL == "" || *dsName == "" {
		return fmt.Errorf("stats needs -server and -dataset")
	}
	api, err := dialServers(*serverURL)
	if err != nil {
		return err
	}
	st, ok := api.(statsAPI)
	if !ok {
		return fmt.Errorf("internal: %T does not implement stats", api)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	resp, err := st.Stats(ctx, &client.StatsRequest{
		Dataset: *dsName,
		Tenant:  *tenant,
		Epoch:   *epoch,
		Epsilon: *epsilon,
		Noise:   *noise,
	})
	if err != nil {
		return err
	}
	fmt.Printf("dataset %s generation %d: %s release at epsilon=%g (epoch %d, tenant %q)\n",
		resp.Dataset, resp.Generation, resp.Noise, resp.Epsilon, resp.Epoch, resp.Tenant)
	fmt.Printf("  population   %d users, %d with profiles, %d public (%d public friendships exact)\n",
		resp.Nodes, resp.Profiles, resp.PublicUsers, resp.PublicEdges)
	fmt.Printf("  sensitivity  degree cap %d, triangle cap %d\n", resp.DegreeCap, resp.TriangleCap)
	printStatsEstimate := func(name string, e client.StatsEstimate) {
		fmt.Printf("  %-12s %14.1f  (se %.1f, %d users noised)\n", name, e.Value, e.SE, e.NoisedUsers)
	}
	printStatsEstimate("friendships", resp.EdgeCount)
	printStatsEstimate("triangles", resp.Triangles)
	printStatsEstimate("2-stars", resp.TwoStars)
	printStatsEstimate("3-stars", resp.ThreeStars)
	fmt.Printf("  degree histogram (se %.1f per bucket):\n", resp.DegreeHistSE)
	for _, b := range resp.DegreeHist {
		fmt.Printf("    %-8s %12.1f\n", b.Label, b.Count)
	}
	fmt.Println("  visibility rates (share of profiled users exposing each item):")
	for _, ir := range resp.Visibility {
		fmt.Printf("    %-10s %s  (se %.3f)\n", ir.Item, stats.Pct(ir.Rate), ir.SE)
	}
	return nil
}

func cmdCluster(args []string) error {
	fs := flag.NewFlagSet("cluster", flag.ExitOnError)
	servers := fs.String("server", "", "comma-separated replica list (URLs or id=url entries)")
	timeout := fs.Duration("timeout", 5*time.Second, "per-probe timeout")
	fs.Parse(args)

	if *servers == "" {
		return fmt.Errorf("cluster needs -server")
	}
	nodes, err := parseServerNodes(*servers)
	if err != nil {
		return err
	}
	cl, err := client.NewCluster(nodes)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	health := cl.Health(ctx)

	t := stats.NewTable("Cluster health", "node", "url", "status", "ready", "ring", "shards", "jobs", "peers")
	for _, n := range nodes {
		h := health[n.ID]
		if h == nil {
			t.AddRow(n.ID, n.URL, "unreachable", "-", "-", "-", "-", "-")
			continue
		}
		peers := make([]string, 0, len(h.Peers))
		for id, state := range h.Peers {
			peers = append(peers, id+":"+state)
		}
		sort.Strings(peers)
		jobs := make([]string, 0, len(h.Jobs))
		for status, count := range h.Jobs {
			if count > 0 {
				jobs = append(jobs, fmt.Sprintf("%d %s", count, status))
			}
		}
		sort.Strings(jobs)
		if len(jobs) == 0 {
			jobs = []string{"none"}
		}
		t.AddRow(n.ID, n.URL, h.Status, fmt.Sprintf("%v", h.Ready),
			fmt.Sprintf("v%d", h.RingVersion),
			fmt.Sprintf("%d/%d", h.ShardsOwned, h.ShardsTotal),
			strings.Join(jobs, ", "),
			strings.Join(peers, " "))
	}
	fmt.Println(t)
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
