// Command sightd serves risk estimates over HTTP — the deployed shape
// of the paper's Sight system, which ran as a live social-network
// application answering owner queries. It fronts the fleet scheduler:
// jobs from many tenants share one worker budget, one weight cache and
// per-tenant admission limits, while each job runs the exact serial
// engine path so its report is byte-identical to an in-process run.
//
//	sightd -addr :8321 -dataset study=study.json -state /var/lib/sightd \
//	       -workers 8 -limit tenantA=4:1000
//
// Datasets preload from JSON studies or packed .snap snapshot files
// (see sightctl pack); .snap files are mmap'd — startup cost is
// page-table setup, not a parse, and replicas serving the same file
// share its page cache.
//
// Endpoints (see docs/API.md for the full reference):
//
//	POST   /v1/estimates                submit a job (dataset ref or inline network)
//	GET    /v1/estimates/{id}           status + final report
//	GET    /v1/estimates/{id}/questions long-poll pending owner questions
//	POST   /v1/estimates/{id}/answers   post owner answers
//	GET    /v1/estimates/{id}/trace     JSONL run trace (internal/obs events)
//	DELETE /v1/estimates/{id}           cancel (degrades to a partial report)
//	POST   /v1/updates                  ingest a graph delta batch
//	POST   /v1/estimates/{id}/revise    revise a report against applied deltas
//	POST   /v1/advise                   pre-acceptance friendship-request risk
//	GET    /v1/stats                    differentially private tenant analytics (POST for inline ε/noise params)
//	GET    /healthz                     liveness + drain state + job counts
//	GET    /varz                        expvar dump + pipeline metrics + scheduler stats
//
// SIGINT/SIGTERM drain gracefully: in-flight jobs are interrupted at
// the next query boundary, their checkpoints stay on disk, and a
// restarted sightd with the same -state directory requeues and resumes
// them without re-asking the owner anything.
//
// Multi-node serving: give every replica a cluster-unique -node id,
// the full peer list as repeatable -peer id=url flags (including an
// entry for itself), and the same shared -state directory. Owners are
// placed on replicas by consistent hashing; any replica accepts any
// request and forwards it to the ring owner, and when a replica dies
// its jobs are adopted by survivors and resumed from the shared
// checkpoints (see docs/CLUSTER.md):
//
//	sightd -addr :8321 -node n1 -peer n1=http://10.0.0.1:8321 \
//	       -peer n2=http://10.0.0.2:8321 -state /mnt/shared/sightd \
//	       -dataset study=study.snap
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"sightrisk/internal/dataset"
	"sightrisk/internal/fleet"
	"sightrisk/internal/place"
	"sightrisk/internal/server"
)

// peerFlags collects repeatable id=url cluster member entries.
type peerFlags []place.Node

// String implements flag.Value.
func (p *peerFlags) String() string {
	parts := make([]string, 0, len(*p))
	for _, n := range *p {
		parts = append(parts, n.ID+"="+n.URL)
	}
	return strings.Join(parts, ",")
}

// Set implements flag.Value.
func (p *peerFlags) Set(v string) error {
	id, url, ok := strings.Cut(v, "=")
	if !ok || id == "" || url == "" {
		return fmt.Errorf("want id=url, got %q", v)
	}
	*p = append(*p, place.Node{ID: id, URL: strings.TrimSuffix(url, "/")})
	return nil
}

// datasetFlags collects repeatable name=path dataset references.
type datasetFlags map[string]string

// String implements flag.Value.
func (d datasetFlags) String() string {
	parts := make([]string, 0, len(d))
	for name, path := range d {
		parts = append(parts, name+"="+path)
	}
	return strings.Join(parts, ",")
}

// Set implements flag.Value.
func (d datasetFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want name=path, got %q", v)
	}
	d[name] = path
	return nil
}

// limitFlags collects repeatable tenant=maxActive:maxQueries limits.
type limitFlags map[string]fleet.TenantLimits

// String implements flag.Value.
func (l limitFlags) String() string {
	parts := make([]string, 0, len(l))
	for tenant, lim := range l {
		parts = append(parts, fmt.Sprintf("%s=%d:%d", tenant, lim.MaxActive, lim.MaxQueries))
	}
	return strings.Join(parts, ",")
}

// Set implements flag.Value.
func (l limitFlags) Set(v string) error {
	tenant, spec, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want tenant=maxActive:maxQueries, got %q", v)
	}
	activeStr, queriesStr, ok := strings.Cut(spec, ":")
	if !ok {
		return fmt.Errorf("want tenant=maxActive:maxQueries, got %q", v)
	}
	active, err := strconv.Atoi(activeStr)
	if err != nil {
		return fmt.Errorf("maxActive in %q: %v", v, err)
	}
	queries, err := strconv.Atoi(queriesStr)
	if err != nil {
		return fmt.Errorf("maxQueries in %q: %v", v, err)
	}
	l[tenant] = fleet.TenantLimits{MaxActive: active, MaxQueries: queries}
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sightd:", err)
		os.Exit(1)
	}
}

func run() error {
	datasets := datasetFlags{}
	limits := limitFlags{}
	peers := peerFlags{}
	var (
		addr         = flag.String("addr", ":8321", "listen address")
		workers      = flag.Int("workers", 0, "concurrent jobs across all tenants (0 = one per CPU)")
		stateDir     = flag.String("state", "", "state directory for checkpoint/resume across restarts (empty = no durability); in cluster mode it must be shared by all replicas")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long to wait for in-flight jobs on shutdown")
		nodeID       = flag.String("node", "", "cluster mode: this replica's cluster-unique id (requires -peer entries including self and a shared -state)")
		probe        = flag.Duration("probe", 2*time.Second, "cluster mode: peer health-probe interval (0 disables probing; deaths are then learned from failed forwards only)")
		statsBudget  = flag.Float64("stats-budget", 0, "per-(tenant, dataset) ε capacity for /v1/stats releases (0 = default; see docs/ANALYTICS.md)")
	)
	flag.Var(datasets, "dataset", "preloaded dataset as name=path (repeatable)")
	flag.Var(limits, "limit", "tenant admission limits as tenant=maxActive:maxQueries (repeatable, 0 = unlimited)")
	flag.Var(&peers, "peer", "cluster mode: member as id=url (repeatable; must include an entry for -node itself)")
	flag.Parse()

	var cluster place.Placement
	if *nodeID != "" || len(peers) > 0 {
		if *nodeID == "" {
			return fmt.Errorf("-peer given without -node")
		}
		if *stateDir == "" {
			return fmt.Errorf("cluster mode needs a shared -state directory")
		}
		roster, err := place.NewRoster(*nodeID, peers)
		if err != nil {
			return err
		}
		cluster = roster
		ids := make([]string, 0, len(peers))
		for _, n := range peers {
			ids = append(ids, n.ID)
		}
		log.Printf("sightd: cluster mode — node %s, members %s, probe %v", *nodeID, strings.Join(ids, ","), *probe)
	}

	loaded := make(map[string]*dataset.Runtime, len(datasets))
	for name, path := range datasets {
		rt, err := dataset.OpenRuntime(path)
		if err != nil {
			return err
		}
		defer rt.Close()
		loaded[name] = rt
		backing := "json"
		if rt.Mapped() {
			backing = "snap (mmap)"
		}
		log.Printf("sightd: dataset %q [%s]: %d users, %d friendships, %d owners",
			name, backing, rt.Snapshot.NumNodes(), rt.Snapshot.NumEdges(), len(rt.Owners))
	}

	srv, err := server.New(server.Config{
		Runtimes:      loaded,
		Workers:       *workers,
		StateDir:      *stateDir,
		Limits:        limits,
		Cluster:       cluster,
		ProbeInterval: *probe,
		StatsBudget:   *statsBudget,
	})
	if err != nil {
		return err
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv}
	errc := make(chan error, 1)
	go func() {
		log.Printf("sightd: listening on %s", *addr)
		if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			errc <- err
		}
	}()

	sigCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		return err
	case <-sigCtx.Done():
	}

	log.Printf("sightd: draining (up to %v)", *drainTimeout)
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		log.Printf("sightd: drain incomplete: %v", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		httpSrv.Close()
	}
	log.Printf("sightd: stopped")
	return nil
}
