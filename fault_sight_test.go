package sight

import (
	"context"
	"errors"
	"math"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// riskByID is a deterministic public-API annotator.
func riskByID(s UserID) Label {
	switch s % 3 {
	case 0:
		return NotRisky
	case 1:
		return Risky
	default:
		return VeryRisky
	}
}

func TestOptionsValidate(t *testing.T) {
	if err := DefaultOptions().Validate(); err != nil {
		t.Fatalf("default options rejected: %v", err)
	}
	mutations := map[string]func(*Options){
		"alpha":          func(o *Options) { o.Pooling.Alpha = 0 },
		"beta":           func(o *Options) { o.Pooling.Beta = -1 },
		"strategy":       func(o *Options) { o.Pooling.Strategy = PoolStrategy(99) },
		"per round":      func(o *Options) { o.Learning.PerRound = 0 },
		"confidence":     func(o *Options) { o.Learning.Confidence = 150 },
		"stable rounds":  func(o *Options) { o.Learning.StableRounds = 0 },
		"rmse threshold": func(o *Options) { o.Learning.RMSEThreshold = 0 },
		"sampler":        func(o *Options) { o.Learning.Sampler = "psychic" },
		"stopper":        func(o *Options) { o.Learning.Stopper = "never" },
		"workers":        func(o *Options) { o.Workers = -2 },
		"retry jitter":   func(o *Options) { o.Retry.Jitter = 7 },
		"abandon grace":  func(o *Options) { o.Checkpointing.AbandonGrace = -time.Second },
	}
	for name, mutate := range mutations {
		opts := DefaultOptions()
		mutate(&opts)
		if err := opts.Validate(); err == nil {
			t.Errorf("%s: bad options accepted", name)
		}
		// EstimateRisk itself refuses them too.
		net, owner := demoNetwork(t, 4, 30)
		if _, err := EstimateRisk(context.Background(), net, owner, AnnotatorFunc(riskByID), opts); err == nil {
			t.Errorf("%s: EstimateRisk accepted bad options", name)
		}
	}
}

func TestEstimateRiskContextAbandonment(t *testing.T) {
	net, owner := demoNetwork(t, 5, 80)
	const abandonAt = 6
	answered := 0
	ann := FallibleAnnotatorFunc(func(_ context.Context, s UserID) (Label, error) {
		if answered >= abandonAt {
			return 0, errors.New("owner closed the laptop: " + ErrAbandoned.Error())
		}
		answered++
		return riskByID(s), nil
	})
	// A bare error (not ErrAbandoned, not transient) must fail the run.
	if _, err := EstimateRiskContext(context.Background(), net, owner, ann, DefaultOptions()); err == nil {
		t.Fatal("hard annotator failure did not fail the run")
	}

	answered = 0
	abandoning := FallibleAnnotatorFunc(func(_ context.Context, s UserID) (Label, error) {
		if answered >= abandonAt {
			return 0, ErrAbandoned
		}
		answered++
		return riskByID(s), nil
	})
	rep, err := EstimateRiskContext(context.Background(), net, owner, abandoning, DefaultOptions())
	if err != nil {
		t.Fatalf("abandonment failed the run: %v", err)
	}
	if !rep.Partial || !errors.Is(rep.Interrupt, ErrAbandoned) {
		t.Fatalf("partial=%v interrupt=%v, want abandoned partial report", rep.Partial, rep.Interrupt)
	}
	if rep.LabelsRequested != abandonAt {
		t.Fatalf("LabelsRequested = %d, want %d", rep.LabelsRequested, abandonAt)
	}
	if len(rep.Strangers) != len(net.Strangers(owner)) {
		t.Fatalf("%d strangers in report, want %d", len(rep.Strangers), len(net.Strangers(owner)))
	}
	if len(rep.PoolStatus) != rep.Pools {
		t.Fatalf("%d pool statuses for %d pools", len(rep.PoolStatus), rep.Pools)
	}
	partials, fallbacks := 0, 0
	for _, st := range rep.PoolStatus {
		if st == PoolPartial {
			partials++
		}
	}
	for _, sr := range rep.Strangers {
		if sr.Label < NotRisky || sr.Label > VeryRisky {
			t.Fatalf("stranger %d has invalid label %v", sr.User, sr.Label)
		}
		if sr.Fallback {
			fallbacks++
			if sr.OwnerLabeled {
				t.Fatalf("stranger %d both owner-labeled and fallback", sr.User)
			}
			if rep.PoolStatus[sr.Pool] != PoolPartial {
				t.Fatalf("fallback stranger %d sits in a %s pool", sr.User, rep.PoolStatus[sr.Pool])
			}
		}
	}
	if partials == 0 || fallbacks == 0 {
		t.Fatalf("partial pools %d, fallback strangers %d — degradation left no trace", partials, fallbacks)
	}
}

func TestCheckpointPublicRoundtripResume(t *testing.T) {
	net, owner := demoNetwork(t, 5, 80)
	opts := DefaultOptions()
	clean, err := EstimateRisk(context.Background(), net, owner, AnnotatorFunc(riskByID), opts)
	if err != nil {
		t.Fatal(err)
	}
	abandonAt := clean.LabelsRequested / 2
	if abandonAt < 2 {
		t.Fatalf("network too small: %d labels", clean.LabelsRequested)
	}

	path := filepath.Join(t.TempDir(), "owner.checkpoint.json")
	answered := 0
	abandoning := FallibleAnnotatorFunc(func(_ context.Context, s UserID) (Label, error) {
		if answered >= abandonAt {
			return 0, ErrAbandoned
		}
		answered++
		return riskByID(s), nil
	})
	iopts := opts
	iopts.Checkpointing.Sink = func(c *Checkpoint) error { return SaveCheckpoint(path, c) }
	rep, err := EstimateRiskContext(context.Background(), net, owner, abandoning, iopts)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Partial {
		t.Fatal("interrupted run not partial")
	}

	cp, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	ropts := opts
	ropts.Checkpointing.Resume = cp
	reasked := 0
	resumeAnn := FallibleAnnotatorFunc(func(_ context.Context, s UserID) (Label, error) {
		reasked++
		return riskByID(s), nil
	})
	resumed, err := EstimateRiskContext(context.Background(), net, owner, resumeAnn, ropts)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Partial {
		t.Fatal("resumed run still partial")
	}
	if reasked != clean.LabelsRequested-abandonAt {
		t.Fatalf("resume asked %d fresh questions, want %d", reasked, clean.LabelsRequested-abandonAt)
	}
	if !reflect.DeepEqual(resumed.Strangers, clean.Strangers) {
		t.Fatal("resumed stranger entries differ from the uninterrupted run")
	}
	if resumed.LabelsRequested != clean.LabelsRequested ||
		resumed.Pools != clean.Pools ||
		!eqOrBothNaN(resumed.MeanRounds, clean.MeanRounds) ||
		!eqOrBothNaN(resumed.ExactMatchRate, clean.ExactMatchRate) {
		t.Fatalf("resumed summary differs: %+v vs %+v", resumed, clean)
	}
	// A seed mismatch must be caught up front.
	ropts.Seed = opts.Seed + 1
	if _, err := EstimateRiskContext(context.Background(), net, owner, resumeAnn, ropts); err == nil {
		t.Fatal("resume with a different seed accepted")
	}
}

func eqOrBothNaN(a, b float64) bool {
	return a == b || (math.IsNaN(a) && math.IsNaN(b))
}
