package sight

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"sightrisk/internal/benefit"
	"sightrisk/internal/crawler"
	"sightrisk/internal/dataset"
	"sightrisk/internal/label"
	"sightrisk/internal/prompt"
	"sightrisk/internal/synthetic"
)

// TestInteractiveFlowEndToEnd drives the full pipeline with the
// terminal annotator fed from a scripted reader — the Sight app
// experience, minus the human.
func TestInteractiveFlowEndToEnd(t *testing.T) {
	cfg := synthetic.SmallStudyConfig()
	cfg.Owners = 1
	cfg.Ego.Strangers = 60
	cfg.Ego.Friends = 20
	cfg.Seed = 19
	study, err := synthetic.GenerateStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	owner := study.Owners[0]
	net := WrapNetwork(study.Graph, study.Profiles)

	// Script far more answers than needed; cycle 1,2,3.
	var script strings.Builder
	for i := 0; i < 500; i++ {
		script.WriteString([]string{"1\n", "2\n", "3\n"}[i%3])
	}
	var out strings.Builder
	ann := prompt.New(strings.NewReader(script.String()), &out, study.Graph, study.Profiles, owner.ID, nil)

	rep, err := EstimateRisk(context.Background(), net, owner.ID, ann, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Strangers) != len(owner.Strangers()) {
		t.Fatalf("report covers %d of %d strangers", len(rep.Strangers), len(owner.Strangers()))
	}
	// The prompt was actually asked.
	if !strings.Contains(out.String(), "risky to establish a relationship") {
		t.Fatal("labeling question never printed")
	}
	// Every label valid.
	for _, sr := range rep.Strangers {
		if !sr.Label.Valid() {
			t.Fatalf("invalid label for %d", sr.User)
		}
	}
}

// TestDatasetRoundTripThroughEngine saves a study, loads it back, and
// verifies the stored-label annotator yields the same report as the
// live simulated owner.
func TestDatasetRoundTripThroughEngine(t *testing.T) {
	cfg := synthetic.SmallStudyConfig()
	cfg.Owners = 1
	cfg.Ego.Strangers = 120
	cfg.Ego.Friends = 24
	cfg.Seed = 23
	study, err := synthetic.GenerateStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	owner := study.Owners[0]

	ds := dataset.FromStudy(study, true)
	path := t.TempDir() + "/study.json"
	if err := ds.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := dataset.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	rec, ok := back.Owner(owner.ID)
	if !ok {
		t.Fatal("owner lost in round trip")
	}

	opts := DefaultOptions()
	opts.Learning.Confidence = owner.Confidence

	liveNet := WrapNetwork(study.Graph, study.Profiles)
	liveRep, err := EstimateRisk(context.Background(), liveNet, owner.ID, owner, opts)
	if err != nil {
		t.Fatal(err)
	}
	storedNet := WrapNetwork(back.Graph, back.ProfileStore())
	storedAnn := dataset.StoredAnnotator{Labels: rec.Labels, Fallback: label.Risky}
	storedRep, err := EstimateRisk(context.Background(), storedNet, owner.ID, storedAnn, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(liveRep.Strangers) != len(storedRep.Strangers) {
		t.Fatal("stranger coverage differs")
	}
	for i := range liveRep.Strangers {
		if liveRep.Strangers[i] != storedRep.Strangers[i] {
			t.Fatalf("stranger %d differs: %+v vs %+v",
				i, liveRep.Strangers[i], storedRep.Strangers[i])
		}
	}
}

// TestCrawlerSnapshotThroughEngine estimates risk on a partial crawl
// snapshot — the dynamic setting — and checks the report covers
// exactly the discovered strangers.
func TestCrawlerSnapshotThroughEngine(t *testing.T) {
	cfg := synthetic.SmallStudyConfig()
	cfg.Owners = 1
	cfg.Ego.Strangers = 150
	cfg.Ego.Friends = 24
	cfg.Seed = 29
	study, err := synthetic.GenerateStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	owner := study.Owners[0]
	c, err := crawler.New(study.Graph, study.Profiles, owner.ID, crawler.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	c.RunUntil(50, 500)
	knownGraph, knownProfiles := c.Known()
	net := WrapNetwork(knownGraph, knownProfiles)

	opts := DefaultOptions()
	opts.Learning.Confidence = owner.Confidence
	rep, err := EstimateRisk(context.Background(), net, owner.ID, owner, opts)
	if err != nil {
		t.Fatal(err)
	}
	discovered := c.Discovered()
	if len(rep.Strangers) != len(discovered) {
		t.Fatalf("report covers %d, crawl discovered %d", len(rep.Strangers), len(discovered))
	}
}

// TestReportJSONRoundTrip: the public Report serializes cleanly (the
// sightctl -out feature depends on it).
func TestReportJSONRoundTrip(t *testing.T) {
	net, owner := demoNetwork(t, 4, 30)
	ann := AnnotatorFunc(func(UserID) Label { return Risky })
	rep, err := EstimateRisk(context.Background(), net, owner, ann, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Owner != rep.Owner || len(back.Strangers) != len(rep.Strangers) {
		t.Fatal("report changed in JSON round trip")
	}
	if back.LabelsRequested != rep.LabelsRequested || back.Pools != rep.Pools {
		t.Fatal("summary fields changed in JSON round trip")
	}
	for i := range rep.Strangers {
		if back.Strangers[i] != rep.Strangers[i] {
			t.Fatal("stranger rows changed in JSON round trip")
		}
	}
}

// TestBenefitFacadeAgainstInternal: the public Benefit agrees with the
// internal measure for a synthetic profile.
func TestBenefitFacadeAgainstInternal(t *testing.T) {
	cfg := synthetic.SmallStudyConfig()
	cfg.Owners = 1
	cfg.Ego.Strangers = 30
	cfg.Ego.Friends = 12
	cfg.Seed = 31
	study, err := synthetic.GenerateStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	owner := study.Owners[0]
	net := WrapNetwork(study.Graph, study.Profiles)
	theta := map[string]float64{}
	for item, v := range owner.Theta {
		theta[string(item)] = v
	}
	for _, s := range owner.Strangers()[:10] {
		got, err := net.Benefit(theta, s)
		if err != nil {
			t.Fatal(err)
		}
		want := benefit.Score(owner.Theta, study.Profiles.Get(s))
		if got != want {
			t.Fatalf("benefit mismatch for %d: %g vs %g", s, got, want)
		}
	}
}
