package sight

// Benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation (DESIGN.md §4) plus ablation benches for the
// design choices DESIGN.md §5 calls out. Each bench times one full
// regeneration of its experiment on the shared small-scale study and
// reports the experiment's key quantity as a custom metric so the
// series the paper plots are visible straight from `go test -bench`.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// The full paper-scale population (47 owners, ~172k strangers) is
// exercised by `go run ./cmd/riskbench -scale full`, which prints the
// actual rows next to the paper's values.

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"

	"sightrisk/internal/active"
	"sightrisk/internal/core"
	"sightrisk/internal/experiments"
	"sightrisk/internal/obs"
	"sightrisk/internal/synthetic"
)

var (
	benchOnce sync.Once
	benchEnv  *experiments.Env
	benchErr  error
)

// benchEnvironment builds the shared study once; the expensive NPP and
// NSP runs are additionally cached inside the Env, so benchmarks that
// only aggregate cached runs measure aggregation, while benchmarks
// that re-run the pipeline build private Envs. Note that every Env now
// also carries a shared content-keyed weight-matrix cache
// (cluster.WeightCache, installed by NewEnv): within one Env, repeat
// pipeline runs reuse pool weight matrices, so such benchmarks measure
// the steady state of a long-lived engine, not cold-start matrix
// builds. Private Envs still start with a cold cache.
func benchEnvironment(b *testing.B) *experiments.Env {
	b.Helper()
	benchOnce.Do(func() {
		cfg := synthetic.SmallStudyConfig()
		cfg.Owners = 6
		cfg.Ego.Strangers = 350
		cfg.Seed = 1
		benchEnv, benchErr = experiments.NewEnv(cfg, core.DefaultConfig())
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchEnv
}

// freshEnv builds an uncached environment for benchmarks that time the
// learning pipeline itself.
func freshEnv(b *testing.B, owners, strangers int) *experiments.Env {
	b.Helper()
	cfg := synthetic.SmallStudyConfig()
	cfg.Owners = owners
	cfg.Ego.Strangers = strangers
	cfg.Seed = 1
	env, err := experiments.NewEnv(cfg, core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	return env
}

// BenchmarkFig4NSGDistribution regenerates Figure 4: stranger counts
// per network similarity group. Reported metric: share of strangers in
// the weakest group (paper: the dominant bar).
func BenchmarkFig4NSGDistribution(b *testing.B) {
	env := benchEnvironment(b)
	var rows []experiments.Fig4Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Fig4(env)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].Share, "group1_share")
	b.ReportMetric(float64(len(rows)), "groups")
}

// BenchmarkFig5ErrorByRound regenerates Figure 5: validation RMSE per
// round for NPP vs NSP pools. Reported metrics: round-2 RMSE of each
// strategy (paper: NPP below NSP).
func BenchmarkFig5ErrorByRound(b *testing.B) {
	env := benchEnvironment(b)
	var rows []experiments.RoundSeriesRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Fig5(env, 8)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[1].NPP, "npp_rmse_r2")
	b.ReportMetric(rows[1].NSP, "nsp_rmse_r2")
}

// BenchmarkFig6Unstabilized regenerates Figure 6: mean unstabilized
// labels per round for NPP vs NSP pools.
func BenchmarkFig6Unstabilized(b *testing.B) {
	env := benchEnvironment(b)
	var rows []experiments.RoundSeriesRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Fig6(env, 8)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[1].NPP, "npp_unstab_r2")
	b.ReportMetric(rows[1].NSP, "nsp_unstab_r2")
}

// BenchmarkFig7VeryRiskyByNSG regenerates Figure 7: share of very
// risky labels per network similarity group. Reported metrics: the
// shares of the first and last populated groups (paper: decreasing).
func BenchmarkFig7VeryRiskyByNSG(b *testing.B) {
	env := benchEnvironment(b)
	var rows []experiments.Fig7Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Fig7(env)
		if err != nil {
			b.Fatal(err)
		}
	}
	first, last := math.NaN(), math.NaN()
	for _, r := range rows {
		if r.Strangers >= 20 {
			if math.IsNaN(first) {
				first = r.VeryRisky
			}
			last = r.VeryRisky
		}
	}
	b.ReportMetric(first, "veryrisky_low_ns")
	b.ReportMetric(last, "veryrisky_high_ns")
}

// BenchmarkHeadlineAccuracy regenerates the Section IV-C headline
// numbers. Reported metrics: exact-match rate (paper: 0.8336), mean
// rounds to stabilization (paper: 3.29) and labels per owner (paper:
// 86 at full scale).
func BenchmarkHeadlineAccuracy(b *testing.B) {
	env := benchEnvironment(b)
	var h experiments.Headline
	for i := 0; i < b.N; i++ {
		var err error
		h, err = experiments.ComputeHeadline(env)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(h.ExactMatchRate, "exact_match")
	b.ReportMetric(h.MeanRounds, "rounds")
	b.ReportMetric(h.MeanLabels, "labels_per_owner")
}

// BenchmarkTable1AttributeImportance regenerates Table I. Reported
// metric: gender's mean normalized importance (paper: 0.6231).
func BenchmarkTable1AttributeImportance(b *testing.B) {
	env := benchEnvironment(b)
	var rows []experiments.ImportanceRow
	for i := 0; i < b.N; i++ {
		rows = experiments.Table1(env)
	}
	for _, r := range rows {
		if r.Name == "gender" {
			b.ReportMetric(r.AvgImportance, "gender_importance")
		}
		if r.Name == "last name" {
			b.ReportMetric(r.AvgImportance, "lastname_importance")
		}
	}
}

// BenchmarkTable2BenefitImportance regenerates Table II. Reported
// metric: photo's mean normalized importance (paper: 0.27).
func BenchmarkTable2BenefitImportance(b *testing.B) {
	env := benchEnvironment(b)
	var rows []experiments.ImportanceRow
	for i := 0; i < b.N; i++ {
		rows = experiments.Table2(env)
	}
	for _, r := range rows {
		if r.Name == "photo" {
			b.ReportMetric(r.AvgImportance, "photo_importance")
		}
	}
}

// BenchmarkTable3ThetaWeights regenerates Table III. Reported metric:
// the spread between the top and bottom mean θ weights (paper: 0.155
// vs 0.1321 — a narrow band).
func BenchmarkTable3ThetaWeights(b *testing.B) {
	env := benchEnvironment(b)
	var rows []experiments.ThetaRow
	for i := 0; i < b.N; i++ {
		rows = experiments.Table3(env)
	}
	b.ReportMetric(rows[0].AvgTheta-rows[len(rows)-1].AvgTheta, "theta_spread")
}

// BenchmarkTable4VisibilityByGender regenerates Table IV. Reported
// metrics: male and female wall visibility (paper: 25% vs 16%).
func BenchmarkTable4VisibilityByGender(b *testing.B) {
	env := benchEnvironment(b)
	var rows []experiments.VisibilityRow
	for i := 0; i < b.N; i++ {
		rows = experiments.Table4(env)
	}
	for _, r := range rows {
		if r.Slice == synthetic.GenderMale {
			b.ReportMetric(r.Rates["wall"], "male_wall_vis")
		}
		if r.Slice == synthetic.GenderFemale {
			b.ReportMetric(r.Rates["wall"], "female_wall_vis")
		}
	}
}

// BenchmarkTable5VisibilityByLocale regenerates Table V. Reported
// metric: the spread of photo visibility across locales (paper: 77% to
// 95%).
func BenchmarkTable5VisibilityByLocale(b *testing.B) {
	env := benchEnvironment(b)
	var rows []experiments.VisibilityRow
	for i := 0; i < b.N; i++ {
		rows = experiments.Table5(env)
	}
	lo, hi := 1.0, 0.0
	for _, r := range rows {
		if r.N < 50 {
			continue
		}
		if v := r.Rates["photo"]; v < lo {
			lo = v
		}
		if v := r.Rates["photo"]; v > hi {
			hi = v
		}
	}
	b.ReportMetric(lo, "photo_vis_min")
	b.ReportMetric(hi, "photo_vis_max")
}

// BenchmarkPipelineOneOwner times the full pipeline (pools + active
// learning + prediction) for a single owner — the user-facing latency
// of a risk report.
func BenchmarkPipelineOneOwner(b *testing.B) {
	env := freshEnv(b, 1, 400)
	o := env.Study.Owners[0]
	engine := core.New(env.Cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.RunOwner(context.Background(), env.Study.Graph, env.Study.Profiles, o.ID, active.Infallible(o), o.Confidence); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEstimateRiskParallel times the full single-owner pipeline
// at several worker counts. Output is identical at every count (see
// TestWorkersDeterminismProperty); this measures only wall time. On a
// single-CPU runner all counts collapse to roughly serial speed —
// record results together with the GOMAXPROCS they were taken at.
func BenchmarkEstimateRiskParallel(b *testing.B) {
	env := freshEnv(b, 1, 400)
	o := env.Study.Owners[0]
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := env.Cfg
			cfg.Workers = workers
			engine := core.New(cfg)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := engine.RunOwner(context.Background(), env.Study.Graph, env.Study.Profiles, o.ID, active.Infallible(o), o.Confidence); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEstimateRiskObserver measures the cost of the observability
// layer on the single-owner parallel pipeline: detached (the nil
// observer, which must stay within noise of the pre-observability
// engine), an in-memory ring with stage digests, and counters-only
// metrics. The nil/ring delta is the number quoted in EXPERIMENTS.md.
func BenchmarkEstimateRiskObserver(b *testing.B) {
	env := freshEnv(b, 1, 400)
	o := env.Study.Owners[0]
	run := func(b *testing.B, mutate func(*core.Config)) {
		cfg := env.Cfg
		cfg.Workers = 4
		if mutate != nil {
			mutate(&cfg)
		}
		engine := core.New(cfg)
		// One warmup run so every variant measures against the same warm
		// weight cache (the Env's cache is shared across sub-benchmarks).
		if _, err := engine.RunOwner(context.Background(), env.Study.Graph, env.Study.Profiles, o.ID, active.Infallible(o), o.Confidence); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := engine.RunOwner(context.Background(), env.Study.Graph, env.Study.Profiles, o.ID, active.Infallible(o), o.Confidence); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("observer=nil", func(b *testing.B) { run(b, nil) })
	b.Run("observer=ring", func(b *testing.B) {
		ring := obs.NewRing(1 << 15)
		run(b, func(cfg *core.Config) {
			cfg.Observer = ring
			cfg.Trace.Digests = true
		})
	})
	b.Run("observer=metrics", func(b *testing.B) {
		m := &obs.Metrics{}
		run(b, func(cfg *core.Config) { cfg.Metrics = m })
	})
}

// BenchmarkAblationClassifiers compares the harmonic classifier to the
// majority and kNN baselines end-to-end. Reported metrics: exact-match
// rate per classifier.
func BenchmarkAblationClassifiers(b *testing.B) {
	var rows []experiments.AblationResult
	for i := 0; i < b.N; i++ {
		env := freshEnv(b, 3, 250)
		var err error
		rows, err = experiments.AblationClassifiers(env)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		switch r.Name {
		case "harmonic (paper)":
			b.ReportMetric(r.ExactMatch, "harmonic_acc")
		case "majority":
			b.ReportMetric(r.ExactMatch, "majority_acc")
		case "knn3":
			b.ReportMetric(r.ExactMatch, "knn3_acc")
		}
	}
}

// BenchmarkAblationAlpha sweeps α ∈ {5, 10, 20}. Reported metrics:
// labels per owner at each α (coarser groups → fewer pools → less
// owner effort, at some accuracy cost).
func BenchmarkAblationAlpha(b *testing.B) {
	var rows []experiments.AblationResult
	for i := 0; i < b.N; i++ {
		env := freshEnv(b, 3, 250)
		var err error
		rows, err = experiments.AblationAlpha(env, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.MeanLabels, r.Name+"_labels")
	}
}

// BenchmarkAblationBeta sweeps Squeezer's β ∈ {0.2, 0.4, 0.6}.
// Reported metrics: labels per owner at each β (higher β → more,
// smaller clusters → more owner effort).
func BenchmarkAblationBeta(b *testing.B) {
	var rows []experiments.AblationResult
	for i := 0; i < b.N; i++ {
		env := freshEnv(b, 3, 250)
		var err error
		rows, err = experiments.AblationBeta(env, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.MeanLabels, r.Name+"_labels")
	}
}

// BenchmarkAblationStopping isolates the two halves of the combined
// stopping rule. Reported metrics: labels per owner for each rule.
func BenchmarkAblationStopping(b *testing.B) {
	var rows []experiments.AblationResult
	for i := 0; i < b.N; i++ {
		env := freshEnv(b, 3, 250)
		var err error
		rows, err = experiments.AblationStopping(env)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		switch r.Name {
		case "combined (paper)":
			b.ReportMetric(r.MeanLabels, "combined_labels")
		case "accuracy only":
			b.ReportMetric(r.MeanLabels, "accuracy_only_labels")
		case "stabilization only":
			b.ReportMetric(r.MeanLabels, "stabilization_only_labels")
		}
	}
}

// BenchmarkAblationWeightExponent sweeps the edge-weight sharpening
// exponent. Reported metrics: exact-match rate per exponent.
func BenchmarkAblationWeightExponent(b *testing.B) {
	var rows []experiments.AblationResult
	for i := 0; i < b.N; i++ {
		env := freshEnv(b, 3, 250)
		var err error
		rows, err = experiments.AblationWeightExponent(env, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.ExactMatch, r.Name+"_acc")
	}
}

// BenchmarkAblationSamplers compares the paper's random in-pool
// sampling with uncertainty/density-based selection. Reported metrics:
// labels per owner for random vs uncertainty sampling.
func BenchmarkAblationSamplers(b *testing.B) {
	var rows []experiments.AblationResult
	for i := 0; i < b.N; i++ {
		env := freshEnv(b, 3, 250)
		var err error
		rows, err = experiments.AblationSamplers(env)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		switch r.Name {
		case "random (paper)":
			b.ReportMetric(r.MeanLabels, "random_labels")
		case "uncertainty":
			b.ReportMetric(r.MeanLabels, "uncertainty_labels")
		case "density":
			b.ReportMetric(r.MeanLabels, "density_labels")
		}
	}
}

// BenchmarkAblationStoppers compares the paper's combined stopping
// rule with multi-criteria alternatives. Reported metrics: labels per
// owner and accuracy for the confidence-based stopper.
func BenchmarkAblationStoppers(b *testing.B) {
	var rows []experiments.AblationResult
	for i := 0; i < b.N; i++ {
		env := freshEnv(b, 3, 250)
		var err error
		rows, err = experiments.AblationStoppers(env)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		switch r.Name {
		case "combined (paper)":
			b.ReportMetric(r.MeanLabels, "combined_labels")
		case "max-confidence 0.9":
			b.ReportMetric(r.MeanLabels, "maxconf_labels")
			b.ReportMetric(r.ExactMatch, "maxconf_acc")
		}
	}
}

// BenchmarkAblationPoolStrategy compares NPP vs NSP end-to-end (the
// aggregate of Figures 5 and 6). Reported metrics: exact-match rate
// per strategy.
func BenchmarkAblationPoolStrategy(b *testing.B) {
	var rows []experiments.AblationResult
	for i := 0; i < b.N; i++ {
		env := freshEnv(b, 3, 250)
		var err error
		rows, err = experiments.AblationPoolStrategy(env)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		switch r.Name {
		case "NPP (paper)":
			b.ReportMetric(r.ExactMatch, "npp_acc")
		case "NSP baseline":
			b.ReportMetric(r.ExactMatch, "nsp_acc")
		}
	}
}

// BenchmarkPrivacyScoreContrast regenerates the related-work contrast
// against Liu & Terzi's privacy scores (paper §V). Reported metrics:
// mean correlation of the naive privacy score with benefit vs with
// risk labels.
func BenchmarkPrivacyScoreContrast(b *testing.B) {
	env := benchEnvironment(b)
	var rows []experiments.ContrastRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.PrivacyScoreContrast(env)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		switch r.Signal {
		case "Liu-Terzi naive vs benefit":
			b.ReportMetric(r.MeanCorr, "privscore_vs_benefit")
		case "Liu-Terzi naive score vs labels":
			b.ReportMetric(r.MeanCorr, "privscore_vs_labels")
		case "network similarity vs labels":
			b.ReportMetric(r.MeanCorr, "ns_vs_labels")
		}
	}
}
