package sight

import (
	"context"
	"math"
	"runtime"
	"testing"
)

func eqNaN(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return a == b
}

// diffReports returns "" when the two reports are identical (NaN
// aware), or a description of the first difference.
func diffReports(t *testing.T, a, b *Report) string {
	t.Helper()
	if a.Owner != b.Owner {
		return "owner differs"
	}
	if a.LabelsRequested != b.LabelsRequested {
		return "labels requested differ"
	}
	if a.Pools != b.Pools {
		return "pool counts differ"
	}
	if !eqNaN(a.MeanRounds, b.MeanRounds) {
		return "mean rounds differ"
	}
	if !eqNaN(a.ExactMatchRate, b.ExactMatchRate) {
		return "exact-match rates differ"
	}
	if len(a.Strangers) != len(b.Strangers) {
		return "stranger counts differ"
	}
	for i := range a.Strangers {
		if a.Strangers[i] != b.Strangers[i] {
			return "stranger " + a.Strangers[i].Pool + " entry differs"
		}
	}
	return ""
}

// TestWorkersDeterminismProperty is the determinism property promised
// by Options.Workers: for seeded synthetic studies of several shapes
// and attitudes, Workers 1 (the legacy serial path), 4, and
// GOMAXPROCS all produce identical Reports — same labels, same query
// effort, same pool assignments, same telemetry.
func TestWorkersDeterminismProperty(t *testing.T) {
	attitudes := map[string]func(*Network) AnnotatorFunc{
		"by-locale": func(net *Network) AnnotatorFunc {
			return func(s UserID) Label {
				if net.Attribute(s, AttrLocale) != "en_US" {
					return VeryRisky
				}
				return NotRisky
			}
		},
		"by-gender": func(net *Network) AnnotatorFunc {
			return func(s UserID) Label {
				if net.Attribute(s, AttrGender) == "male" {
					return Risky
				}
				return NotRisky
			}
		},
		"three-way": func(net *Network) AnnotatorFunc {
			return func(s UserID) Label {
				switch {
				case net.Attribute(s, AttrLocale) != "en_US":
					return VeryRisky
				case net.Attribute(s, AttrGender) == "male":
					return Risky
				default:
					return NotRisky
				}
			}
		},
	}
	shapes := []struct {
		friends, strangers int
	}{
		{3, 25},
		{5, 60},
		{7, 90},
	}
	for name, attitude := range attitudes {
		for _, shape := range shapes {
			net, owner := demoNetwork(t, shape.friends, shape.strangers)
			ann := attitude(net)
			serialOpts := DefaultOptions()
			serialOpts.Workers = 1
			serial, err := EstimateRisk(context.Background(), net, owner, ann, serialOpts)
			if err != nil {
				t.Fatalf("%s f=%d n=%d: %v", name, shape.friends, shape.strangers, err)
			}
			for _, workers := range []int{4, runtime.GOMAXPROCS(0)} {
				opts := DefaultOptions()
				opts.Workers = workers
				rep, err := EstimateRisk(context.Background(), net, owner, ann, opts)
				if err != nil {
					t.Fatalf("%s f=%d n=%d workers=%d: %v", name, shape.friends, shape.strangers, workers, err)
				}
				if d := diffReports(t, serial, rep); d != "" {
					t.Fatalf("%s f=%d n=%d: workers=%d report differs from serial: %s",
						name, shape.friends, shape.strangers, workers, d)
				}
			}
		}
	}
}
