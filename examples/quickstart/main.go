// Quickstart: build a small social network by hand, define how the
// owner judges risk, and run the full risk-estimation pipeline through
// the public sight API.
//
// The scenario: Alice (the owner) has three friends — Bob, Carol and
// Dan — whose own contacts are strangers to her. Alice is wary of
// strangers from other countries unless they are well connected to her
// friend circle. The engine asks "Alice" (an AnnotatorFunc encoding
// that attitude) for a handful of labels and predicts the rest.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"sightrisk"
)

func main() {
	net := sight.NewNetwork()

	const (
		alice = sight.UserID(1)
		bob   = sight.UserID(2)
		carol = sight.UserID(3)
		dan   = sight.UserID(4)
	)
	friends := []sight.UserID{bob, carol, dan}
	for _, f := range friends {
		must(net.AddFriendship(alice, f))
	}
	// Alice's friends know each other: a dense little community.
	must(net.AddFriendship(bob, carol))
	must(net.AddFriendship(carol, dan))

	// Strangers 100..139: each is a contact of one or more of Alice's
	// friends. Even ids are local (same locale as Alice), odd ids are
	// from abroad; every third stranger knows two of Alice's friends.
	var strangers []sight.UserID
	for i := 0; i < 40; i++ {
		s := sight.UserID(100 + i)
		strangers = append(strangers, s)
		must(net.AddFriendship(s, friends[i%len(friends)]))
		if i%3 == 0 {
			must(net.AddFriendship(s, friends[(i+1)%len(friends)]))
		}
		locale := "en_US"
		gender := "female"
		if i%2 == 1 {
			locale = "it_IT"
		}
		if i%4 < 2 {
			gender = "male"
		}
		net.SetAttribute(s, sight.AttrGender, gender)
		net.SetAttribute(s, sight.AttrLocale, locale)
		net.SetAttribute(s, sight.AttrLastName, fmt.Sprintf("Family-%d", i%6))
		net.SetVisibility(s, sight.ItemPhoto, i%5 != 0)
		net.SetVisibility(s, sight.ItemWall, i%7 == 0)
	}
	net.SetAttribute(alice, sight.AttrGender, "female")
	net.SetAttribute(alice, sight.AttrLocale, "en_US")
	net.SetAttribute(alice, sight.AttrLastName, "Family-0")

	// Alice's risk attitude: strangers from abroad are risky, and
	// risky becomes very risky when they are barely connected to her
	// circle. Locals are fine unless totally unconnected.
	alicesJudgment := sight.AnnotatorFunc(func(s sight.UserID) sight.Label {
		foreign := net.Attribute(s, sight.AttrLocale) != "en_US"
		ns := net.NetworkSimilarity(alice, s)
		switch {
		case foreign && ns < 0.2:
			return sight.VeryRisky
		case foreign || ns < 0.1:
			return sight.Risky
		default:
			return sight.NotRisky
		}
	})

	report, err := sight.EstimateRisk(context.Background(), net, alice, alicesJudgment, sight.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	counts := report.CountByLabel()
	fmt.Printf("Alice has %d strangers; the engine asked her for %d labels (%d pools).\n",
		len(report.Strangers), report.LabelsRequested, report.Pools)
	fmt.Printf("Risk estimate: %d not risky, %d risky, %d very risky\n\n",
		counts[sight.NotRisky], counts[sight.Risky], counts[sight.VeryRisky])

	fmt.Println("stranger  NS     source     label")
	for _, sr := range report.Strangers {
		source := "predicted"
		if sr.OwnerLabeled {
			source = "alice"
		}
		fmt.Printf("%-8d  %.3f  %-9s  %s\n", sr.User, sr.NetworkSimilarity, source, sr.Label)
	}

	// How good were the predictions? Compare against Alice's own
	// judgment for every stranger.
	agree := 0
	for _, sr := range report.Strangers {
		if sr.Label == alicesJudgment.LabelStranger(sr.User) {
			agree++
		}
	}
	fmt.Printf("\npredictions agree with Alice on %d/%d strangers\n", agree, len(report.Strangers))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
