// Accesscontrol: the label-based access control and privacy-settings
// applications the paper's conclusion proposes. After estimating risk
// labels for an owner's strangers, the example:
//
//  1. builds a label-based access-control policy from the owner's
//     item sensitivities (which stranger label may see which item),
//  2. evaluates the policy against every stranger (who gets to see
//     the owner's photos? their wall?),
//  3. triages simulated friendship requests from the five closest
//     strangers, and
//  4. prints ranked privacy-settings suggestions.
//
// Run with:
//
//	go run ./examples/accesscontrol
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"sightrisk"
	"sightrisk/internal/synthetic"
)

func main() {
	cfg := synthetic.SmallStudyConfig()
	cfg.Owners = 1
	cfg.Ego.Strangers = 400
	cfg.Seed = 17
	study, err := synthetic.GenerateStudy(cfg)
	if err != nil {
		log.Fatal(err)
	}
	owner := study.Owners[0]
	net := sight.WrapNetwork(study.Graph, study.Profiles)

	opts := sight.DefaultOptions()
	opts.Learning.Confidence = owner.Confidence
	report, err := sight.EstimateRisk(context.Background(), net, owner.ID, owner, opts)
	if err != nil {
		log.Fatal(err)
	}
	counts := report.CountByLabel()
	fmt.Printf("owner %d: %d strangers → %d not risky / %d risky / %d very risky\n\n",
		owner.ID, len(report.Strangers), counts[sight.NotRisky], counts[sight.Risky], counts[sight.VeryRisky])

	// 1. Label-based access control.
	sens := sight.DefaultSensitivity()
	policy := sight.BuildAccessPolicy(sens)
	fmt.Println("label-based access policy (from Table III sensitivities):")
	fmt.Println(policy)

	// 2. Who may see what under the policy, via the enforcement API.
	ctl, err := policy.Enforce(net, report)
	if err != nil {
		log.Fatal(err)
	}
	audience := ctl.Audience()
	fmt.Println("strangers admitted per item under the policy:")
	for _, item := range []string{sight.ItemPhoto, sight.ItemWall, sight.ItemHometown} {
		fmt.Printf("  %-10s %4d of %d\n", item, audience[item], len(report.Strangers))
	}
	someStranger := report.Strangers[0].User
	if ok, reason := ctl.CanSee(someStranger, sight.ItemPhoto); true {
		fmt.Printf("  e.g. stranger %d on photos: allow=%v (%s)\n", someStranger, ok, reason)
	}

	// 3. Friendship-request triage for the five closest strangers.
	closest := append([]sight.StrangerRisk(nil), report.Strangers...)
	sort.Slice(closest, func(i, j int) bool {
		return closest[i].NetworkSimilarity > closest[j].NetworkSimilarity
	})
	fmt.Println("\nfriendship-request triage (five closest strangers):")
	for _, sr := range closest[:5] {
		adv, err := sight.TriageFriendRequest(report, sr.User)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  stranger %-8d NS=%.2f label=%-10s → %-7s (%s)\n",
			sr.User, sr.NetworkSimilarity, sr.Label, adv.Verdict, adv.Reason)
	}

	// 4. Privacy-settings suggestions.
	suggestions, err := sight.SuggestPrivacySettings(report, sens)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nprivacy-settings suggestions (most urgent first):")
	for _, s := range suggestions[:4] {
		fmt.Printf("  %-10s reaches %d risky (%d very risky) strangers → %s\n",
			s.Item, s.RiskyReach, s.VeryRiskyReach, s.Suggestion)
	}
}
