// Crawlsight: reproduce the dynamic-graph setting the paper's Sight
// application lived in. The crawler discovers an owner's strangers
// incrementally (interaction events + API rate limits), and the risk
// pipeline re-runs on periodic snapshots of the partially known graph
// — exactly why the paper selects its active-learning training sets on
// the fly rather than fixing them up front ("the user can start label
// and learn about the risk since the first day").
//
// Run with:
//
//	go run ./examples/crawlsight
package main

import (
	"context"
	"fmt"
	"log"

	"sightrisk"
	"sightrisk/internal/crawler"
	"sightrisk/internal/synthetic"
)

func main() {
	cfg := synthetic.SmallStudyConfig()
	cfg.Owners = 1
	cfg.Ego.Strangers = 500
	cfg.Seed = 11
	study, err := synthetic.GenerateStudy(cfg)
	if err != nil {
		log.Fatal(err)
	}
	owner := study.Owners[0]

	c, err := crawler.New(study.Graph, study.Profiles, owner.ID, crawler.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("crawling owner %d: %d true strangers\n\n", owner.ID, len(study.Graph.Strangers(owner.ID)))
	fmt.Println("tick   discovered  coverage  labels asked  not/risky/very")

	opts := sight.DefaultOptions()
	opts.Learning.Confidence = owner.Confidence
	for phase := 1; phase <= 6; phase++ {
		c.RunUntil(phase*80, 200)
		st := c.Stats()

		// Re-estimate risk on the current snapshot. The owner's
		// attitude (the simulated annotator) judges strangers by their
		// true graph position, so labels stay consistent as the
		// snapshot grows — only coverage changes.
		knownGraph, knownProfiles := c.Known()
		net := sight.WrapNetwork(knownGraph, knownProfiles)
		report, err := sight.EstimateRisk(context.Background(), net, owner.ID, owner, opts)
		if err != nil {
			log.Fatal(err)
		}
		counts := report.CountByLabel()
		fmt.Printf("%-5d  %-10d  %-7.1f%%  %-12d  %d/%d/%d\n",
			st.Ticks, st.Discovered, 100*st.Coverage, report.LabelsRequested,
			counts[sight.NotRisky], counts[sight.Risky], counts[sight.VeryRisky])
	}

	fmt.Println("\nthe risk picture is usable from the first snapshot and refines as the crawl fills in")
}
