// Attitudes: the paper's central design claim is that risk is
// *subjective* — the same social graph yields different risk labels
// for different owners, so risk must be learned per owner rather than
// computed by a global rule. This example runs three owner attitudes
// (cautious, balanced, permissive) over the same network and compares
// the resulting risk reports and owner effort.
//
// Run with:
//
//	go run ./examples/attitudes
package main

import (
	"context"
	"fmt"
	"log"

	"sightrisk"
	"sightrisk/internal/synthetic"
)

func main() {
	cfg := synthetic.SmallStudyConfig()
	cfg.Owners = 1
	cfg.Ego.Strangers = 500
	cfg.Seed = 3
	study, err := synthetic.GenerateStudy(cfg)
	if err != nil {
		log.Fatal(err)
	}
	ownerID := study.Owners[0].ID
	net := sight.WrapNetwork(study.Graph, study.Profiles)

	// Three risk attitudes expressed directly against the public API.
	// Each judges the same strangers by network closeness, origin and
	// current profile exposure — but with very different bars.
	attitudes := []struct {
		name string
		ann  sight.AnnotatorFunc
	}{
		{"cautious", func(s sight.UserID) sight.Label {
			// Everyone unfamiliar is a threat; closeness only
			// downgrades to "risky".
			if net.NetworkSimilarity(ownerID, s) >= 0.2 {
				return sight.Risky
			}
			return sight.VeryRisky
		}},
		{"balanced", func(s sight.UserID) sight.Label {
			ns := net.NetworkSimilarity(ownerID, s)
			foreign := net.Attribute(s, sight.AttrLocale) != net.Attribute(ownerID, sight.AttrLocale)
			switch {
			case ns >= 0.2 && !foreign:
				return sight.NotRisky
			case ns >= 0.1 || !foreign:
				return sight.Risky
			default:
				return sight.VeryRisky
			}
		}},
		{"permissive", func(s sight.UserID) sight.Label {
			// Strangers showing open profiles feel approachable; only
			// completely opaque unconnected profiles worry this owner.
			open := 0
			for _, item := range []string{sight.ItemPhoto, sight.ItemFriend, sight.ItemWall} {
				// A visible item signals openness.
				if theta, err := net.Benefit(map[string]float64{item: 1}, s); err == nil && theta > 0 {
					open++
				}
			}
			if open == 0 && net.NetworkSimilarity(ownerID, s) < 0.05 {
				return sight.Risky
			}
			return sight.NotRisky
		}},
	}

	fmt.Printf("same network (%d strangers), three owners\n\n", len(net.Strangers(ownerID)))
	fmt.Println("attitude    labels asked  rounds  not risky  risky  very risky")
	for _, att := range attitudes {
		opts := sight.DefaultOptions()
		report, err := sight.EstimateRisk(context.Background(), net, ownerID, att.ann, opts)
		if err != nil {
			log.Fatal(err)
		}
		c := report.CountByLabel()
		fmt.Printf("%-10s  %-12d  %-6.2f  %-9d  %-5d  %d\n",
			att.name, report.LabelsRequested, report.MeanRounds,
			c[sight.NotRisky], c[sight.Risky], c[sight.VeryRisky])
	}

	fmt.Println("\nidentical graph, radically different risk pictures — risk labels cannot be")
	fmt.Println("precomputed globally; they must be learned from each owner's own judgments")
}
