// Friendaudit: audit a realistic owner's two-hop network and produce a
// privacy "watch list" — the scenario the paper's introduction
// motivates: before accepting friend requests from friends-of-friends,
// a user wants to know which of those 2-hop contacts would be risky to
// interact with.
//
// The example generates one synthetic owner ego-network (the stand-in
// for a crawled Facebook neighborhood), runs the risk-estimation
// pipeline with the owner's simulated risk attitude, and prints:
//
//   - the owner-effort summary (labels asked vs strangers covered),
//   - the risk breakdown per network-similarity band,
//   - the watch list: strangers predicted very risky that are well
//     connected to the owner's circle (the ones most likely to send a
//     convincing friend request), and
//   - the benefit each watch-list stranger currently exposes.
//
// Run with:
//
//	go run ./examples/friendaudit
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"sightrisk"
	"sightrisk/internal/synthetic"
)

func main() {
	// One owner with ~600 strangers; the generated study plays the
	// role of the crawled neighborhood.
	cfg := synthetic.SmallStudyConfig()
	cfg.Owners = 1
	cfg.Ego.Strangers = 600
	cfg.Seed = 7
	study, err := synthetic.GenerateStudy(cfg)
	if err != nil {
		log.Fatal(err)
	}
	owner := study.Owners[0]
	net := sight.WrapNetwork(study.Graph, study.Profiles)

	opts := sight.DefaultOptions()
	opts.Learning.Confidence = owner.Confidence
	report, err := sight.EstimateRisk(context.Background(), net, owner.ID, owner, opts)
	if err != nil {
		log.Fatal(err)
	}

	counts := report.CountByLabel()
	fmt.Printf("friend audit for owner %d\n", owner.ID)
	fmt.Printf("  strangers audited   %d\n", len(report.Strangers))
	fmt.Printf("  labels asked        %d (%.1f%% of strangers)\n",
		report.LabelsRequested, 100*float64(report.LabelsRequested)/float64(len(report.Strangers)))
	fmt.Printf("  risk breakdown      %d not risky / %d risky / %d very risky\n\n",
		counts[sight.NotRisky], counts[sight.Risky], counts[sight.VeryRisky])

	// Risk by closeness band.
	type band struct{ total, very int }
	bands := make([]band, 10)
	for _, sr := range report.Strangers {
		b := int(sr.NetworkSimilarity * 10)
		if b > 9 {
			b = 9
		}
		bands[b].total++
		if sr.Label == sight.VeryRisky {
			bands[b].very++
		}
	}
	fmt.Println("  closeness band   strangers   very risky")
	for i, b := range bands {
		if b.total == 0 {
			continue
		}
		fmt.Printf("  NS [%.1f,%.1f)      %-9d   %.1f%%\n",
			float64(i)/10, float64(i+1)/10, b.total, 100*float64(b.very)/float64(b.total))
	}

	// Watch list: very risky strangers ordered by closeness — these
	// share the most mutual friends, so a friend request from them
	// would look most plausible.
	var watch []sight.StrangerRisk
	for _, sr := range report.Strangers {
		if sr.Label == sight.VeryRisky {
			watch = append(watch, sr)
		}
	}
	sort.Slice(watch, func(i, j int) bool {
		if watch[i].NetworkSimilarity != watch[j].NetworkSimilarity {
			return watch[i].NetworkSimilarity > watch[j].NetworkSimilarity
		}
		return watch[i].User < watch[j].User
	})
	if len(watch) > 10 {
		watch = watch[:10]
	}

	fmt.Printf("\n  watch list (top %d very-risky strangers by closeness)\n", len(watch))
	fmt.Println("  stranger   NS     mutual friends   benefit now")
	theta := map[string]float64{
		sight.ItemPhoto: 0.147, sight.ItemFriend: 0.149, sight.ItemWall: 0.1328,
		sight.ItemHometown: 0.155, sight.ItemLocation: 0.143,
		sight.ItemEdu: 0.1393, sight.ItemWork: 0.1321,
	}
	for _, sr := range watch {
		mutual := len(study.Graph.MutualFriends(owner.ID, sr.User))
		b, err := net.Benefit(theta, sr.User)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-9d  %.3f  %-15d  %.3f\n", sr.User, sr.NetworkSimilarity, mutual, b)
	}
}
