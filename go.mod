module sightrisk

go 1.22
