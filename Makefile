# Tier-1 verification flow (see ROADMAP.md): build + vet + tests, plus
# a one-iteration fleet bench so the benchmark code compiles and runs
# on every PR, the determinism audit over the robustness matrix, the
# godoc-coverage check, a sightd serving smoke test and a 2-replica
# cluster smoke test with a mid-sweep node kill. `make race` adds the
# concurrency stress pass that covers the multi-tenant scheduler, the
# serving layer and the cluster tier.

GO ?= go

.PHONY: tier1 build vet test bench-smoke audit docs serve-smoke scale-smoke cluster-smoke incremental-smoke advise-smoke stats-smoke race fuzz bench fleet-bench serve-bench scale-bench cluster-bench incremental-bench advise-bench ldp-bench

tier1: build vet test bench-smoke audit docs serve-smoke scale-smoke cluster-smoke incremental-smoke advise-smoke stats-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Compile-and-run every fleet benchmark once — catches bit-rot in the
# benchmark harness without paying for a real measurement.
bench-smoke:
	$(GO) test -run=NONE -bench=Fleet -benchtime=1x ./internal/fleet/

# Determinism audit: run the robustness matrix twice per topology with
# the event auditor attached and fail on the first divergent event
# (see README "Observability").
audit:
	$(GO) run ./cmd/riskbench -audit -workers 4

# Documentation checks: vet plus godoc coverage of the public surface
# (every exported identifier in the root package, client/ and the
# serving stack must carry a doc comment — see cmd/doccheck).
docs:
	$(GO) vet ./...
	$(GO) run ./cmd/doccheck

# Serving smoke test: stand up an in-process sightd, run every owner
# of the small study through the HTTP API on both annotator paths, and
# fail unless the served reports are byte-identical to in-process
# serial runs. Doubles as the BENCH_serve methodology at small scale;
# the throwaway JSON keeps tier-1 from dirtying the checked-in numbers.
serve-smoke:
	$(GO) run ./cmd/riskbench -serve-rtt -serve-out /tmp/BENCH_serve_smoke.json

# Scale-curve smoke test: one small population through the whole
# snapshot-file pipeline — generate straight into CSR, pack, mmap
# open, JSON-load comparison, owner estimates off the mapped pages,
# byte-identity against the in-memory arrays. The real curve
# (BENCH_scale.json, up to 10^6 nodes) comes from `make scale-bench`.
scale-smoke:
	$(GO) run ./cmd/riskbench -scale sweep -scale-sizes 10000 -scale-owners 2 -scale-out /tmp/BENCH_scale_smoke.json

# Cluster smoke test: a 2-replica in-process sightd cluster over one
# shared checkpoint store, every owner routed by the consistent-hash
# ring, one replica killed mid-sweep, and every report — including the
# failed-over ones — verified byte-identical to the serial run (see
# docs/CLUSTER.md). The throwaway JSON keeps tier-1 from dirtying the
# checked-in numbers.
cluster-smoke:
	$(GO) run ./cmd/riskbench -nodes 2 -workers 2 -cluster-out /tmp/BENCH_cluster_smoke.json

# Incremental smoke test: one small network through the delta
# pipeline — apply update batches, revise against the prior run, and
# fail unless the revision is byte-identical to a full recompute. The
# real speedup curve (BENCH_incremental.json, 10^4-10^5 strangers)
# comes from `make incremental-bench`.
incremental-smoke:
	$(GO) run ./cmd/riskbench -incremental -incr-sizes 2000 -incr-deltas 1,10 -incr-out /tmp/BENCH_incremental_smoke.json

# Advise smoke test: one small network through the pre-acceptance
# friendship-request evaluator — candidate edge on a cloned graph,
# counterfactual by delta.Revise against the prior run, byte-identity
# against a full recompute and across worker counts. The real speedup
# table (BENCH_advise.json, 10^4 strangers, >=10x required) comes from
# `make advise-bench`.
advise-smoke:
	$(GO) run ./cmd/riskbench -advise -advise-sizes 2000 -advise-out /tmp/BENCH_advise_smoke.json

# LDP analytics smoke test: a short ε sweep of the /v1/stats estimator
# stack — visibility-aware noise must beat the all-edge baseline for
# every statistic at every ε, and repeated (tenant, dataset, epoch)
# triples must reproduce byte-identical releases. The real sweep
# (BENCH_ldp.json, 200 trials per cell) comes from `make ldp-bench`.
stats-smoke:
	$(GO) run ./cmd/riskbench -ldp -ldp-trials 40 -ldp-strangers 800 -ldp-out /tmp/BENCH_ldp_smoke.json

race:
	$(GO) test -race ./...

# Snapshot-decoder fuzzing: run the corruption fuzzer for a short
# bounded burst (longer runs: raise -fuzztime).
fuzz:
	$(GO) test -run Fuzz -fuzz=FuzzSnapfileOpen -fuzztime=10s ./internal/graph/snapfile

# Full micro-benchmark sweep (slow; see README "Performance").
bench:
	$(GO) test -run=NONE -bench=. -benchmem ./...

# Fleet throughput trajectory: writes BENCH_fleet.json (see
# EXPERIMENTS.md for methodology).
fleet-bench:
	$(GO) run ./cmd/riskbench -tenants 8 -scale medium

# Serving-layer round trips: writes BENCH_serve.json (see
# EXPERIMENTS.md for methodology).
serve-bench:
	$(GO) run ./cmd/riskbench -serve-rtt

# Million-node scale curve: writes BENCH_scale.json (see EXPERIMENTS.md
# "Scale curve" for methodology). Takes a few minutes.
scale-bench:
	$(GO) run ./cmd/riskbench -scale sweep

# Cluster failover curve: replica counts 1, 2 and 4 with a mid-sweep
# kill at N > 1; writes BENCH_cluster.json (see EXPERIMENTS.md
# "Cluster failover" for methodology).
cluster-bench:
	$(GO) run ./cmd/riskbench -nodes 1,2,4 -scale medium

# Incremental speedup curve: delta sizes 1/10/100 against 10^4- and
# 10^5-stranger networks; writes BENCH_incremental.json (see
# EXPERIMENTS.md "Incremental re-estimation" for methodology). Takes a
# few minutes — the 10^5 full recomputes dominate.
incremental-bench:
	$(GO) run ./cmd/riskbench -incremental

# Advise speedup table: counterfactual friendship-request evaluation vs
# full recompute at 10^4 strangers; fails unless the counterfactual is
# at least 10x faster. Writes BENCH_advise.json (see EXPERIMENTS.md
# "Pre-acceptance advise" for methodology).
advise-bench:
	$(GO) run ./cmd/riskbench -advise

# ε-vs-accuracy sweep for the differentially private analytics:
# visibility-aware noise against the all-edge baseline at ε in
# {0.5, 1, 2, 4}; writes BENCH_ldp.json (see EXPERIMENTS.md
# "ε vs accuracy" for methodology).
ldp-bench:
	$(GO) run ./cmd/riskbench -ldp
