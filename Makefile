# Tier-1 verification flow (see ROADMAP.md): build + vet + tests, plus
# a one-iteration fleet bench so the benchmark code compiles and runs
# on every PR, and the determinism audit over the robustness matrix.
# `make race` adds the concurrency stress pass that covers the
# multi-tenant scheduler.

GO ?= go

.PHONY: tier1 build vet test bench-smoke audit race bench fleet-bench

tier1: build vet test bench-smoke audit

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Compile-and-run every fleet benchmark once — catches bit-rot in the
# benchmark harness without paying for a real measurement.
bench-smoke:
	$(GO) test -run=NONE -bench=Fleet -benchtime=1x ./internal/fleet/

# Determinism audit: run the robustness matrix twice per topology with
# the event auditor attached and fail on the first divergent event
# (see README "Observability").
audit:
	$(GO) run ./cmd/riskbench -audit -workers 4

race:
	$(GO) test -race ./...

# Full micro-benchmark sweep (slow; see README "Performance").
bench:
	$(GO) test -run=NONE -bench=. -benchmem ./...

# Fleet throughput trajectory: writes BENCH_fleet.json (see
# EXPERIMENTS.md for methodology).
fleet-bench:
	$(GO) run ./cmd/riskbench -tenants 8 -scale medium
