package sight

// Public surface for the applications the paper's conclusion
// (Section VI) envisions on top of risk labels — label-based access
// control, friendship-request triage, privacy-settings suggestions —
// and for mining pipeline parameters from the data instead of fixing
// them by hand.

import (
	"context"
	"fmt"
	"math"

	"sightrisk/internal/advisor"
	"sightrisk/internal/autotune"
	"sightrisk/internal/cluster"
	"sightrisk/internal/core"
	"sightrisk/internal/delta"
	"sightrisk/internal/label"
	"sightrisk/internal/profile"
	"sightrisk/internal/similarity"
)

// DefaultSensitivity returns per-item privacy sensitivities in [0,1]
// derived from the paper's Table III θ weights. Keys are the Item*
// constants.
func DefaultSensitivity() map[string]float64 {
	s := advisor.DefaultSensitivity()
	out := make(map[string]float64, len(s))
	for item, v := range s {
		out[string(item)] = v
	}
	return out
}

// AccessPolicy is a label-based access-control policy: for each of the
// owner's profile items, the riskiest stranger label still allowed to
// see it (paper §VI: "label-based access control").
type AccessPolicy struct {
	inner advisor.Policy
}

// BuildAccessPolicy derives a policy from per-item sensitivities (see
// DefaultSensitivity for the format). More sensitive items admit less
// risky audiences.
func BuildAccessPolicy(sensitivity map[string]float64) AccessPolicy {
	s := make(advisor.Sensitivity, len(sensitivity))
	for item, v := range sensitivity {
		s[profile.Item(item)] = v
	}
	return AccessPolicy{inner: advisor.BuildPolicy(s)}
}

// Allows reports whether a stranger carrying the given risk label may
// see the item under the policy.
func (p AccessPolicy) Allows(item string, l Label) bool {
	return p.inner.Allows(profile.Item(item), l)
}

// String renders the policy one rule per line.
func (p AccessPolicy) String() string { return p.inner.String() }

// AccessController enforces a label-based access policy against a
// computed risk report: it answers whether a given user may see a
// given item of the owner's profile.
type AccessController struct {
	inner *advisor.Enforcer
}

// Enforce binds the policy to a network and a risk report, producing
// the controller that answers access checks for the report's owner.
func (p AccessPolicy) Enforce(n *Network, rep *Report) (*AccessController, error) {
	if n == nil || rep == nil {
		return nil, fmt.Errorf("sight: network and report must not be nil")
	}
	labels := make(map[UserID]label.Label, len(rep.Strangers))
	for _, sr := range rep.Strangers {
		labels[sr.User] = sr.Label
	}
	e, err := advisor.NewEnforcer(n.g, rep.Owner, labels, p.inner)
	if err != nil {
		return nil, err
	}
	return &AccessController{inner: e}, nil
}

// CanSee reports whether viewer may see the owner's item, with the
// reason (owner / direct friend / label admitted / blocked / no
// label).
func (c *AccessController) CanSee(viewer UserID, item string) (bool, string) {
	d := c.inner.CanSee(viewer, profile.Item(item))
	return d.Allow, d.Reason
}

// Audience returns, per item name, how many labeled strangers the
// policy admits.
func (c *AccessController) Audience() map[string]int {
	out := make(map[string]int, 7)
	for item, n := range c.inner.Audience() {
		out[string(item)] = n
	}
	return out
}

// FriendRequestAdvice is the triage outcome for an incoming friendship
// request.
type FriendRequestAdvice struct {
	// Verdict is "accept", "review" or "decline".
	Verdict string
	// Reason explains the verdict in one sentence.
	Reason string
}

// TriageFriendRequest recommends how to handle a friendship request
// from a stranger, using the stranger's entry in the risk report.
// Strangers absent from the report (not second-hop contacts when the
// report was built) come back as "review".
func TriageFriendRequest(rep *Report, stranger UserID) (FriendRequestAdvice, error) {
	if rep == nil {
		return FriendRequestAdvice{}, fmt.Errorf("sight: nil report")
	}
	ctx := advisor.RequestContext{Stranger: stranger}
	for _, sr := range rep.Strangers {
		if sr.User == stranger {
			ctx.Label = sr.Label
			ctx.NetworkSimilarity = sr.NetworkSimilarity
			ctx.OwnerLabeled = sr.OwnerLabeled
			ctx.Fallback = sr.Fallback
			break
		}
	}
	rec := advisor.TriageRequest(ctx)
	return FriendRequestAdvice{Verdict: string(rec.Verdict), Reason: rec.Reason}, nil
}

// ItemRiskChange is the change in one profile item's exposure if a
// friendship request were accepted: the policy-admitted stranger
// audience before and after the candidate edge, and how much of that
// audience the risk pipeline flagged.
type ItemRiskChange struct {
	// Item is the profile item (see the Item* constants).
	Item string
	// MaxLabel is the policy rule: the riskiest stranger label still
	// admitted to the item (0 = friends only).
	MaxLabel Label
	// AudienceBefore counts labeled strangers the policy admits today.
	AudienceBefore int
	// AudienceAfter is AudienceBefore on the counterfactual graph with
	// the candidate edge accepted.
	AudienceAfter int
	// RiskyBefore counts admitted strangers labeled risky or very risky
	// today.
	RiskyBefore int
	// RiskyAfter is RiskyBefore on the counterfactual.
	RiskyAfter int
	// GainsAccess marks items the candidate cannot see today but would
	// see after acceptance (friends see everything).
	GainsAccess bool
}

// FriendRequestAssessment is the full pre-acceptance evaluation of a
// friendship request: the triage verdict, the global before/after risk
// reach, and per-item exposure deltas — everything derived from the
// owner's current report and the counterfactual report with the
// candidate edge added.
type FriendRequestAssessment struct {
	// Verdict is "accept", "review" or "decline".
	Verdict string
	// Reason explains the verdict in one sentence.
	Reason string
	// Candidate is the requesting user.
	Candidate UserID
	// Label is the candidate's current risk label (0 when the pipeline
	// never scored them).
	Label Label
	// NetworkSimilarity is NS(owner, candidate) from the current report.
	NetworkSimilarity float64
	// NewStrangers counts users entering the owner's 2-hop stranger view
	// through the accepted edge.
	NewStrangers int
	// LostStrangers counts users leaving the stranger view (at minimum
	// the candidate, who becomes a friend).
	LostStrangers int
	// RiskyBefore counts strangers labeled risky or very risky today.
	RiskyBefore int
	// RiskyAfter is RiskyBefore on the counterfactual.
	RiskyAfter int
	// VeryRiskyBefore counts only the very-risky strangers today.
	VeryRiskyBefore int
	// VeryRiskyAfter is VeryRiskyBefore on the counterfactual.
	VeryRiskyAfter int
	// Items holds one exposure-delta row per policy-covered profile
	// item, in canonical item order.
	Items []ItemRiskChange
}

// reportLabelMap collects a report's per-stranger labels.
func reportLabelMap(rep *Report) map[UserID]label.Label {
	m := make(map[UserID]label.Label, len(rep.Strangers))
	for _, sr := range rep.Strangers {
		m[sr.User] = sr.Label
	}
	return m
}

// AssessRequest evaluates a friendship request from two already
// computed reports: the owner's current one and the counterfactual one
// produced with the candidate edge added (see AdviseRequest for the
// end-to-end path that also builds the counterfactual). Both reports
// must be for the same owner. The result is a deterministic function
// of the two reports and the policy.
func (p AccessPolicy) AssessRequest(before, after *Report, candidate UserID) (*FriendRequestAssessment, error) {
	if before == nil || after == nil {
		return nil, fmt.Errorf("sight: before and after reports must not be nil")
	}
	if before.Owner != after.Owner {
		return nil, fmt.Errorf("sight: reports are for different owners (%d vs %d)", before.Owner, after.Owner)
	}
	rctx := advisor.RequestContext{Stranger: candidate}
	for _, sr := range before.Strangers {
		if sr.User == candidate {
			rctx.Label = sr.Label
			rctx.NetworkSimilarity = sr.NetworkSimilarity
			rctx.OwnerLabeled = sr.OwnerLabeled
			rctx.Fallback = sr.Fallback
			break
		}
	}
	a := advisor.AssessRequest(rctx, reportLabelMap(before), reportLabelMap(after), p.inner)
	out := &FriendRequestAssessment{
		Verdict:           string(a.Verdict),
		Reason:            a.Reason,
		Candidate:         a.Candidate,
		Label:             a.Label,
		NetworkSimilarity: a.NetworkSimilarity,
		NewStrangers:      a.NewStrangers,
		LostStrangers:     a.LostStrangers,
		RiskyBefore:       a.RiskyBefore,
		RiskyAfter:        a.RiskyAfter,
		VeryRiskyBefore:   a.VeryRiskyBefore,
		VeryRiskyAfter:    a.VeryRiskyAfter,
	}
	for _, it := range a.Items {
		out.Items = append(out.Items, ItemRiskChange{
			Item:           string(it.Item),
			MaxLabel:       it.MaxLabel,
			AudienceBefore: it.AudienceBefore,
			AudienceAfter:  it.AudienceAfter,
			RiskyBefore:    it.RiskyBefore,
			RiskyAfter:     it.RiskyAfter,
			GainsAccess:    it.GainsAccess,
		})
	}
	return out, nil
}

// AdviseRequest evaluates a pending friendship request end to end
// before the owner accepts it: run (or reuse) the owner's current
// estimate, construct the counterfactual network with the candidate
// edge added, revise the estimate incrementally against the prior run
// (see internal/delta — only pools the new edge dirties are recomputed)
// and assess the per-item exposure delta under the policy. The
// counterfactual path is byte-identical to a full recompute on the
// modified graph, at any Options.Workers value.
//
// prior, when non-nil, is the owner's current report computed earlier
// with the same options against the same network; passing it skips the
// baseline run. The network must be graph-backed (ErrReadOnly
// otherwise) and is not modified: the counterfactual edge lands on a
// clone.
func (p AccessPolicy) AdviseRequest(ctx context.Context, n *Network, owner, candidate UserID, ann AnyAnnotator, opts Options) (*FriendRequestAssessment, error) {
	if n == nil {
		return nil, fmt.Errorf("sight: network must not be nil")
	}
	g := n.Graph()
	if g == nil {
		return nil, ErrReadOnly
	}
	if owner == candidate {
		return nil, fmt.Errorf("sight: candidate must differ from owner")
	}
	if !g.HasNode(owner) || !g.HasNode(candidate) {
		return nil, fmt.Errorf("sight: owner %d and candidate %d must both exist in the network", owner, candidate)
	}
	if g.HasEdge(owner, candidate) {
		return nil, fmt.Errorf("sight: users %d and %d are already friends", owner, candidate)
	}
	fallible, err := AsFallible(ann)
	if err != nil {
		return nil, err
	}
	cfg, err := opts.EngineConfig()
	if err != nil {
		return nil, err
	}
	beforeRun, err := core.New(cfg).RunOwner(ctx, g, n.profiles, owner, fallible, math.NaN())
	if err != nil {
		return nil, err
	}
	gc := g.Clone()
	batch := delta.Batch{{Kind: delta.EdgeAdd, A: owner, B: candidate}}
	if err := batch.Apply(gc, n.profiles); err != nil {
		return nil, err
	}
	afterRun, _, err := delta.Revise(ctx, cfg, gc, n.profiles, owner, fallible, math.NaN(), beforeRun, batch)
	if err != nil {
		return nil, err
	}
	return p.AssessRequest(AssembleReport(beforeRun), AssembleReport(afterRun), candidate)
}

// SettingsSuggestion is one privacy-settings recommendation, ranked by
// how badly the item's friends-of-friends audience collides with the
// owner's risk labels.
type SettingsSuggestion struct {
	// Item is the profile item (see the Item* constants).
	Item string
	// RiskyReach counts risky strangers the item is visible to.
	RiskyReach int
	// VeryRiskyReach counts very-risky strangers the item is visible to.
	VeryRiskyReach int
	// Suggestion is the recommended audience change, human-readable.
	Suggestion string
}

// SuggestPrivacySettings ranks the owner's profile items by exposure
// to risky strangers and recommends audience changes (paper §VI:
// "privacy settings suggestion").
func SuggestPrivacySettings(rep *Report, sensitivity map[string]float64) ([]SettingsSuggestion, error) {
	if rep == nil {
		return nil, fmt.Errorf("sight: nil report")
	}
	labels := make(map[UserID]Label, len(rep.Strangers))
	for _, sr := range rep.Strangers {
		labels[sr.User] = sr.Label
	}
	s := make(advisor.Sensitivity, len(sensitivity))
	for item, v := range sensitivity {
		s[profile.Item(item)] = v
	}
	exposures := advisor.SuggestSettings(labels, s)
	out := make([]SettingsSuggestion, 0, len(exposures))
	for _, e := range exposures {
		out = append(out, SettingsSuggestion{
			Item:           string(e.Item),
			RiskyReach:     e.RiskyReach,
			VeryRiskyReach: e.VeryRiskyReach,
			Suggestion:     e.Suggestion,
		})
	}
	return out, nil
}

// TunedParameters holds data-mined pipeline parameters (paper §VI:
// "mine from the data most of the values for the parameters on which
// our learning process relies").
type TunedParameters struct {
	// Alpha is the suggested network-similarity group count.
	Alpha int
	// Beta is the suggested Squeezer threshold.
	Beta float64
	// SqueezerWeights are IGR-mined attribute weights (present only
	// when prior labels were supplied).
	SqueezerWeights map[string]float64
	// Theta are system-suggested benefit weights (scarcity-priced).
	Theta map[string]float64
}

// TuneParameters mines α, β and system-suggested θ weights from the
// owner's stranger population, and — when priorLabels from earlier
// sessions are supplied — Squeezer attribute weights from their
// information-gain ratios.
func TuneParameters(n *Network, owner UserID, priorLabels map[UserID]Label) (TunedParameters, error) {
	if n == nil {
		return TunedParameters{}, fmt.Errorf("sight: nil network")
	}
	strangers := n.Strangers(owner)
	if len(strangers) == 0 {
		return TunedParameters{}, fmt.Errorf("sight: owner %d has no strangers to tune on", owner)
	}
	scores := make([]float64, len(strangers))
	for i, s := range strangers {
		scores[i] = similarity.NS(n.g, owner, s)
	}
	out := TunedParameters{
		Alpha: autotune.SuggestAlpha(scores, 20),
		Theta: map[string]float64{},
	}
	beta, err := autotune.SuggestBeta(n.profiles, strangers, cluster.DefaultSqueezerConfig(), 5)
	if err != nil {
		return TunedParameters{}, err
	}
	out.Beta = beta
	for item, v := range autotune.SuggestTheta(n.profiles, strangers) {
		out.Theta[string(item)] = v
	}
	if len(priorLabels) > 0 {
		labels := make(map[UserID]Label, len(priorLabels))
		for u, l := range priorLabels {
			labels[u] = l
		}
		out.SqueezerWeights = map[string]float64{}
		for a, w := range autotune.SuggestWeights(n.profiles, labels, nil) {
			out.SqueezerWeights[string(a)] = w
		}
	}
	return out, nil
}

// Apply copies the tuned parameters onto an Options value.
func (t TunedParameters) Apply(opts Options) Options {
	if t.Alpha > 0 {
		opts.Pooling.Alpha = t.Alpha
	}
	if t.Beta > 0 {
		opts.Pooling.Beta = t.Beta
	}
	return opts
}
