package sight_test

import (
	"context"
	"fmt"

	"sightrisk"
)

// ExampleEstimateRisk runs the full pipeline on a miniature network:
// one owner, three friends, and twelve strangers the owner judges by
// locale.
func ExampleEstimateRisk() {
	net := sight.NewNetwork()
	owner := sight.UserID(1)
	friends := []sight.UserID{2, 3, 4}
	for _, f := range friends {
		if err := net.AddFriendship(owner, f); err != nil {
			panic(err)
		}
	}
	for i := 0; i < 12; i++ {
		s := sight.UserID(100 + i)
		if err := net.AddFriendship(s, friends[i%3]); err != nil {
			panic(err)
		}
		locale := "en_US"
		if i%2 == 1 {
			locale = "it_IT"
		}
		net.SetAttribute(s, sight.AttrLocale, locale)
		net.SetAttribute(s, sight.AttrGender, "female")
		net.SetAttribute(s, sight.AttrLastName, "Fam-1")
	}

	// The owner considers strangers from abroad risky.
	judge := sight.AnnotatorFunc(func(s sight.UserID) sight.Label {
		if net.Attribute(s, sight.AttrLocale) != "en_US" {
			return sight.Risky
		}
		return sight.NotRisky
	})

	report, err := sight.EstimateRisk(context.Background(), net, owner, judge, sight.DefaultOptions())
	if err != nil {
		panic(err)
	}
	counts := report.CountByLabel()
	fmt.Printf("strangers: %d\n", len(report.Strangers))
	fmt.Printf("not risky: %d, risky: %d\n", counts[sight.NotRisky], counts[sight.Risky])
	// Output:
	// strangers: 12
	// not risky: 6, risky: 6
}

// ExampleBuildAccessPolicy shows label-based access control: a policy
// derived from item sensitivities decides which strangers may see
// which items.
func ExampleBuildAccessPolicy() {
	policy := sight.BuildAccessPolicy(map[string]float64{
		sight.ItemWall:  0.9, // friends only
		sight.ItemPhoto: 0.6, // not-risky strangers only
		sight.ItemWork:  0.2, // everyone with a label
	})
	fmt.Println(policy.Allows(sight.ItemWall, sight.NotRisky))
	fmt.Println(policy.Allows(sight.ItemPhoto, sight.NotRisky))
	fmt.Println(policy.Allows(sight.ItemPhoto, sight.VeryRisky))
	fmt.Println(policy.Allows(sight.ItemWork, sight.VeryRisky))
	// Output:
	// false
	// true
	// false
	// true
}
