package sight_test

import (
	"context"
	"errors"
	"fmt"

	"sightrisk"
)

// exampleNetwork builds the miniature study the examples share: one
// owner, three friends, and twelve strangers split evenly between two
// locales. The returned judge labels strangers from abroad risky.
func exampleNetwork() (*sight.Network, sight.UserID, sight.AnnotatorFunc) {
	net := sight.NewNetwork()
	owner := sight.UserID(1)
	friends := []sight.UserID{2, 3, 4}
	for _, f := range friends {
		if err := net.AddFriendship(owner, f); err != nil {
			panic(err)
		}
	}
	for i := 0; i < 12; i++ {
		s := sight.UserID(100 + i)
		if err := net.AddFriendship(s, friends[i%3]); err != nil {
			panic(err)
		}
		locale := "en_US"
		if i%2 == 1 {
			locale = "it_IT"
		}
		net.SetAttribute(s, sight.AttrLocale, locale)
		net.SetAttribute(s, sight.AttrGender, "female")
		net.SetAttribute(s, sight.AttrLastName, "Fam-1")
	}
	judge := sight.AnnotatorFunc(func(s sight.UserID) sight.Label {
		if net.Attribute(s, sight.AttrLocale) != "en_US" {
			return sight.Risky
		}
		return sight.NotRisky
	})
	return net, owner, judge
}

// ExampleEstimateRisk runs the full pipeline on a miniature network:
// one owner, three friends, and twelve strangers the owner judges by
// locale.
func ExampleEstimateRisk() {
	net := sight.NewNetwork()
	owner := sight.UserID(1)
	friends := []sight.UserID{2, 3, 4}
	for _, f := range friends {
		if err := net.AddFriendship(owner, f); err != nil {
			panic(err)
		}
	}
	for i := 0; i < 12; i++ {
		s := sight.UserID(100 + i)
		if err := net.AddFriendship(s, friends[i%3]); err != nil {
			panic(err)
		}
		locale := "en_US"
		if i%2 == 1 {
			locale = "it_IT"
		}
		net.SetAttribute(s, sight.AttrLocale, locale)
		net.SetAttribute(s, sight.AttrGender, "female")
		net.SetAttribute(s, sight.AttrLastName, "Fam-1")
	}

	// The owner considers strangers from abroad risky.
	judge := sight.AnnotatorFunc(func(s sight.UserID) sight.Label {
		if net.Attribute(s, sight.AttrLocale) != "en_US" {
			return sight.Risky
		}
		return sight.NotRisky
	})

	report, err := sight.EstimateRisk(context.Background(), net, owner, judge, sight.DefaultOptions())
	if err != nil {
		panic(err)
	}
	counts := report.CountByLabel()
	fmt.Printf("strangers: %d\n", len(report.Strangers))
	fmt.Printf("not risky: %d, risky: %d\n", counts[sight.NotRisky], counts[sight.Risky])
	// Output:
	// strangers: 12
	// not risky: 6, risky: 6
}

// ExampleAsFallible shows the two annotator contracts EstimateRisk
// accepts and how they are adapted to the fault-aware one the engine
// runs on.
func ExampleAsFallible() {
	// A plain Annotator is wrapped: it can neither fail nor be
	// canceled mid-question.
	plain := sight.AnnotatorFunc(func(sight.UserID) sight.Label { return sight.NotRisky })
	ann, _ := sight.AsFallible(plain)
	l, err := ann.LabelStranger(context.Background(), 42)
	fmt.Println(l, err)

	// A FallibleAnnotator passes through unchanged — it can return
	// transient errors (retried per Options.Retry) or ErrAbandoned
	// (degrades the run to a partial report).
	tired := sight.FallibleAnnotatorFunc(func(ctx context.Context, s sight.UserID) (sight.Label, error) {
		return 0, sight.ErrAbandoned
	})
	ann, _ = sight.AsFallible(tired)
	_, err = ann.LabelStranger(context.Background(), 42)
	fmt.Println(errors.Is(err, sight.ErrAbandoned))

	// Anything else is rejected up front.
	_, err = sight.AsFallible(nil)
	fmt.Println(err)
	// Output:
	// not risky <nil>
	// true
	// sight: annotator must not be nil
}

// ExampleEstimateRisk_checkpointResume interrupts a labeling session
// and resumes it from a checkpoint: the first session's answers are
// replayed — the owner is never asked twice — and the resumed report
// is identical to an uninterrupted run.
func ExampleEstimateRisk_checkpointResume() {
	net, owner, judge := exampleNetwork()
	ctx := context.Background()

	// First session: the owner walks away after three answers — one
	// full round, so one checkpoint has been written by then.
	answered := 0
	quitter := sight.FallibleAnnotatorFunc(func(ctx context.Context, s sight.UserID) (sight.Label, error) {
		if answered >= 3 {
			return 0, sight.ErrAbandoned
		}
		answered++
		return judge(s), nil
	})
	var saved *sight.Checkpoint
	opts := sight.DefaultOptions()
	opts.Checkpointing.Sink = func(c *sight.Checkpoint) error { saved = c; return nil }
	partial, err := sight.EstimateRisk(ctx, net, owner, quitter, opts)
	if err != nil {
		panic(err)
	}
	fmt.Printf("first session: partial %v, checkpoint saved %v\n", partial.Partial, saved != nil)

	// Second session: resume from the checkpoint with a present owner.
	opts.Checkpointing.Sink = nil
	opts.Checkpointing.Resume = saved
	resumed, err := sight.EstimateRisk(ctx, net, owner, judge, opts)
	if err != nil {
		panic(err)
	}
	fmt.Printf("resumed session: partial %v\n", resumed.Partial)

	// The resumed report matches an uninterrupted run label for label.
	clean, err := sight.EstimateRisk(ctx, net, owner, judge, sight.DefaultOptions())
	if err != nil {
		panic(err)
	}
	same := len(resumed.Strangers) == len(clean.Strangers)
	for i := range clean.Strangers {
		same = same && resumed.Strangers[i] == clean.Strangers[i]
	}
	fmt.Printf("identical to an uninterrupted run: %v\n", same)
	// Output:
	// first session: partial true, checkpoint saved true
	// resumed session: partial false
	// identical to an uninterrupted run: true
}

// ExampleBuildAccessPolicy shows label-based access control: a policy
// derived from item sensitivities decides which strangers may see
// which items.
func ExampleBuildAccessPolicy() {
	policy := sight.BuildAccessPolicy(map[string]float64{
		sight.ItemWall:  0.9, // friends only
		sight.ItemPhoto: 0.6, // not-risky strangers only
		sight.ItemWork:  0.2, // everyone with a label
	})
	fmt.Println(policy.Allows(sight.ItemWall, sight.NotRisky))
	fmt.Println(policy.Allows(sight.ItemPhoto, sight.NotRisky))
	fmt.Println(policy.Allows(sight.ItemPhoto, sight.VeryRisky))
	fmt.Println(policy.Allows(sight.ItemWork, sight.VeryRisky))
	// Output:
	// false
	// true
	// false
	// true
}
