package sight

import (
	"context"
	"fmt"
	"math"
	"testing"
)

// demoNetwork builds a small but non-trivial network: one owner, f
// friends forming a connected circle, and n strangers whose profiles
// alternate deterministically.
func demoNetwork(t *testing.T, f, n int) (*Network, UserID) {
	t.Helper()
	net := NewNetwork()
	owner := UserID(1)
	friends := make([]UserID, f)
	for i := range friends {
		friends[i] = UserID(10 + i)
		if err := net.AddFriendship(owner, friends[i]); err != nil {
			t.Fatal(err)
		}
		if i > 0 {
			if err := net.AddFriendship(friends[i-1], friends[i]); err != nil {
				t.Fatal(err)
			}
		}
	}
	genders := []string{"male", "female"}
	locales := []string{"en_US", "it_IT"}
	for i := 0; i < n; i++ {
		s := UserID(1000 + i)
		if err := net.AddFriendship(s, friends[i%f]); err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			if err := net.AddFriendship(s, friends[(i+1)%f]); err != nil {
				t.Fatal(err)
			}
		}
		net.SetAttribute(s, AttrGender, genders[i%2])
		net.SetAttribute(s, AttrLocale, locales[(i/2)%2])
		net.SetAttribute(s, AttrLastName, fmt.Sprintf("Fam-%d", i%5))
		net.SetVisibility(s, ItemPhoto, i%4 != 0)
	}
	net.SetAttribute(owner, AttrGender, "female")
	net.SetAttribute(owner, AttrLocale, "en_US")
	net.SetAttribute(owner, AttrLastName, "Fam-0")
	return net, owner
}

func TestNetworkBuilding(t *testing.T) {
	net := NewNetwork()
	net.AddUser(5)
	if net.NumUsers() != 1 {
		t.Fatalf("users = %d", net.NumUsers())
	}
	if err := net.AddFriendship(1, 2); err != nil {
		t.Fatal(err)
	}
	if net.NumUsers() != 3 || net.NumFriendships() != 1 {
		t.Fatalf("users/friendships = %d/%d", net.NumUsers(), net.NumFriendships())
	}
	if err := net.AddFriendship(1, 1); err == nil {
		t.Fatal("self friendship accepted")
	}
	if got := net.Friends(1); len(got) != 1 || got[0] != 2 {
		t.Fatalf("Friends = %v", got)
	}
}

func TestAttributesAndVisibility(t *testing.T) {
	net := NewNetwork()
	net.SetAttribute(7, AttrGender, "male")
	if got := net.Attribute(7, AttrGender); got != "male" {
		t.Fatalf("attribute = %q", got)
	}
	if got := net.Attribute(8, AttrGender); got != "" {
		t.Fatalf("attribute of unknown user = %q", got)
	}
	net.SetVisibility(9, ItemPhoto, true)
	b, err := net.Benefit(map[string]float64{ItemPhoto: 1}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if b <= 0 {
		t.Fatalf("benefit = %g, want > 0", b)
	}
}

func TestBenefitValidation(t *testing.T) {
	net := NewNetwork()
	net.SetVisibility(1, ItemPhoto, true)
	if _, err := net.Benefit(map[string]float64{ItemPhoto: 2}, 1); err == nil {
		t.Fatal("theta > 1 accepted")
	}
	if _, err := net.Benefit(map[string]float64{}, 1); err == nil {
		t.Fatal("empty theta accepted")
	}
}

func TestStrangersThroughPublicAPI(t *testing.T) {
	net, owner := demoNetwork(t, 4, 20)
	strangers := net.Strangers(owner)
	if len(strangers) != 20 {
		t.Fatalf("strangers = %d, want 20", len(strangers))
	}
}

func TestNetworkSimilarityBounds(t *testing.T) {
	net, owner := demoNetwork(t, 4, 20)
	for _, s := range net.Strangers(owner) {
		ns := net.NetworkSimilarity(owner, s)
		if ns <= 0 || ns > 1 {
			t.Fatalf("NS(%d) = %g", s, ns)
		}
	}
}

func TestEstimateRiskEndToEnd(t *testing.T) {
	net, owner := demoNetwork(t, 5, 60)
	// The "owner" dislikes foreign strangers.
	ann := AnnotatorFunc(func(s UserID) Label {
		if net.Attribute(s, AttrLocale) != "en_US" {
			return VeryRisky
		}
		return NotRisky
	})
	rep, err := EstimateRisk(context.Background(), net, owner, ann, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Owner != owner {
		t.Fatalf("owner = %d", rep.Owner)
	}
	if len(rep.Strangers) != 60 {
		t.Fatalf("report covers %d strangers", len(rep.Strangers))
	}
	if rep.Pools < 1 {
		t.Fatalf("pools = %d", rep.Pools)
	}
	if rep.LabelsRequested < 1 || rep.LabelsRequested > 60 {
		t.Fatalf("labels requested = %d", rep.LabelsRequested)
	}
	// Final labels agree with the annotator's rule everywhere (clean
	// separable attitude).
	for _, sr := range rep.Strangers {
		if want := ann(sr.User); sr.Label != want {
			t.Fatalf("stranger %d labeled %v, want %v", sr.User, sr.Label, want)
		}
		if sr.Pool == "" {
			t.Fatalf("stranger %d has no pool id", sr.User)
		}
		if sr.NetworkSimilarity < 0 || sr.NetworkSimilarity > 1 {
			t.Fatalf("stranger %d NS = %g", sr.User, sr.NetworkSimilarity)
		}
	}
	// Report helpers.
	counts := rep.CountByLabel()
	if counts[NotRisky]+counts[Risky]+counts[VeryRisky] != 60 {
		t.Fatalf("counts = %v", counts)
	}
	some := rep.Strangers[0]
	if rep.Label(some.User) != some.Label {
		t.Fatal("Report.Label lookup wrong")
	}
	if rep.Label(424242) != 0 {
		t.Fatal("Report.Label for unknown stranger should be 0")
	}
}

func TestEstimateRiskValidation(t *testing.T) {
	net, owner := demoNetwork(t, 3, 5)
	ann := AnnotatorFunc(func(UserID) Label { return Risky })
	if _, err := EstimateRisk(context.Background(), nil, owner, ann, DefaultOptions()); err == nil {
		t.Fatal("nil network accepted")
	}
	if _, err := EstimateRisk(context.Background(), net, owner, nil, DefaultOptions()); err == nil {
		t.Fatal("nil annotator accepted")
	}
	opts := DefaultOptions()
	opts.Pooling.Strategy = PoolStrategy(7)
	if _, err := EstimateRisk(context.Background(), net, owner, ann, opts); err == nil {
		t.Fatal("bad strategy accepted")
	}
	opts = DefaultOptions()
	opts.Pooling.Alpha = 0
	if _, err := EstimateRisk(context.Background(), net, owner, ann, opts); err == nil {
		t.Fatal("alpha 0 accepted")
	}
	opts = DefaultOptions()
	opts.Learning.PerRound = 0
	if _, err := EstimateRisk(context.Background(), net, owner, ann, opts); err == nil {
		t.Fatal("per-round 0 accepted")
	}
	if _, err := EstimateRisk(context.Background(), net, 999999, ann, DefaultOptions()); err == nil {
		t.Fatal("unknown owner accepted")
	}
}

func TestNSPStrategyOption(t *testing.T) {
	net, owner := demoNetwork(t, 5, 40)
	ann := AnnotatorFunc(func(UserID) Label { return Risky })
	opts := DefaultOptions()
	opts.Pooling.Strategy = PoolNSP
	rep, err := EstimateRisk(context.Background(), net, owner, ann, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Strangers) != 40 {
		t.Fatalf("NSP report covers %d strangers", len(rep.Strangers))
	}
	// NSP pools never carry a profile-cluster suffix > 0.
	for _, sr := range rep.Strangers {
		if sr.Pool[len(sr.Pool)-3:] != "000" {
			t.Fatalf("NSP pool id %q, want psg000 suffix", sr.Pool)
		}
	}
}

func TestOptionsSeedDeterminism(t *testing.T) {
	net, owner := demoNetwork(t, 5, 50)
	ann := AnnotatorFunc(func(s UserID) Label {
		if net.Attribute(s, AttrGender) == "male" {
			return Risky
		}
		return NotRisky
	})
	a, err := EstimateRisk(context.Background(), net, owner, ann, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := EstimateRisk(context.Background(), net, owner, ann, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if a.LabelsRequested != b.LabelsRequested {
		t.Fatal("same options produced different effort")
	}
	for i := range a.Strangers {
		if a.Strangers[i] != b.Strangers[i] {
			t.Fatal("same options produced different reports")
		}
	}
}

func TestMeanRoundsNaNForTrivialNetworks(t *testing.T) {
	// A network whose pools are all trivial yields NaN mean rounds but
	// still a complete report.
	net := NewNetwork()
	owner := UserID(1)
	if err := net.AddFriendship(owner, 2); err != nil {
		t.Fatal(err)
	}
	if err := net.AddFriendship(2, 3); err != nil {
		t.Fatal(err)
	}
	net.SetAttribute(3, AttrGender, "male")
	rep, err := EstimateRisk(context.Background(), net, owner, AnnotatorFunc(func(UserID) Label { return NotRisky }), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Strangers) != 1 {
		t.Fatalf("strangers = %d", len(rep.Strangers))
	}
	if !math.IsNaN(rep.MeanRounds) {
		t.Fatalf("mean rounds = %g, want NaN", rep.MeanRounds)
	}
	if !rep.Strangers[0].OwnerLabeled {
		t.Fatal("trivial pool stranger not owner-labeled")
	}
}

func TestSamplerAndStopperOptions(t *testing.T) {
	net, owner := demoNetwork(t, 5, 50)
	ann := AnnotatorFunc(func(s UserID) Label {
		if net.Attribute(s, AttrGender) == "male" {
			return Risky
		}
		return NotRisky
	})
	for _, sampler := range []string{"random", "uncertainty", "density", "uncertainty-density"} {
		opts := DefaultOptions()
		opts.Learning.Sampler = sampler
		rep, err := EstimateRisk(context.Background(), net, owner, ann, opts)
		if err != nil {
			t.Fatalf("sampler %s: %v", sampler, err)
		}
		if len(rep.Strangers) != 50 {
			t.Fatalf("sampler %s covered %d strangers", sampler, len(rep.Strangers))
		}
	}
	for _, stopper := range []string{"combined", "max-confidence", "overall-uncertainty"} {
		opts := DefaultOptions()
		opts.Learning.Stopper = stopper
		if _, err := EstimateRisk(context.Background(), net, owner, ann, opts); err != nil {
			t.Fatalf("stopper %s: %v", stopper, err)
		}
	}
	opts := DefaultOptions()
	opts.Learning.Sampler = "nope"
	if _, err := EstimateRisk(context.Background(), net, owner, ann, opts); err == nil {
		t.Fatal("unknown sampler accepted")
	}
	opts = DefaultOptions()
	opts.Learning.Stopper = "nope"
	if _, err := EstimateRisk(context.Background(), net, owner, ann, opts); err == nil {
		t.Fatal("unknown stopper accepted")
	}
}

func TestProgressCallback(t *testing.T) {
	net, owner := demoNetwork(t, 5, 50)
	ann := AnnotatorFunc(func(UserID) Label { return Risky })
	var calls int
	var lastDone, lastTotal, lastLabels int
	opts := DefaultOptions()
	opts.Progress = func(done, total, labels int) {
		calls++
		if done < lastDone || total <= 0 || done > total {
			t.Fatalf("bad progress (%d/%d)", done, total)
		}
		if labels < lastLabels {
			t.Fatal("labels went backwards")
		}
		lastDone, lastTotal, lastLabels = done, total, labels
	}
	rep, err := EstimateRisk(context.Background(), net, owner, ann, opts)
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("progress never called")
	}
	if lastDone != lastTotal || lastTotal != rep.Pools {
		t.Fatalf("final progress %d/%d, report pools %d", lastDone, lastTotal, rep.Pools)
	}
	if lastLabels != rep.LabelsRequested {
		t.Fatalf("final labels %d, report %d", lastLabels, rep.LabelsRequested)
	}
}
