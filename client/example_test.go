package client_test

import (
	"context"
	"fmt"
	"net/http/httptest"

	sight "sightrisk"
	"sightrisk/client"
	"sightrisk/internal/server"
)

// ExampleClient_Run drives one estimate through a sightd server: the
// network is submitted inline, the server asks the owner about a few
// strangers per round over the long-poll loop, and the answer function
// plays the owner. Production deployments run cmd/sightd; the example
// stands the same handler up in-process.
func ExampleClient_Run() {
	// A miniature study: one owner, three friends, twelve strangers
	// split evenly between two locales.
	net := sight.NewNetwork()
	owner := sight.UserID(1)
	friends := []sight.UserID{2, 3, 4}
	for _, f := range friends {
		if err := net.AddFriendship(owner, f); err != nil {
			panic(err)
		}
	}
	for i := 0; i < 12; i++ {
		s := sight.UserID(100 + i)
		if err := net.AddFriendship(s, friends[i%3]); err != nil {
			panic(err)
		}
		locale := "en_US"
		if i%2 == 1 {
			locale = "it_IT"
		}
		net.SetAttribute(s, sight.AttrLocale, locale)
	}

	srv, err := server.New(server.Config{Workers: 1})
	if err != nil {
		panic(err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()
	defer srv.Drain(context.Background())

	// The owner considers strangers from abroad risky.
	c := client.New(hs.URL)
	rep, err := c.Run(context.Background(), &client.EstimateRequest{
		Network: client.NetworkFrom(net),
		Owner:   int64(owner),
	}, func(stranger int64) (int, error) {
		if net.Attribute(sight.UserID(stranger), sight.AttrLocale) != "en_US" {
			return int(sight.Risky), nil
		}
		return int(sight.NotRisky), nil
	})
	if err != nil {
		panic(err)
	}

	risky := 0
	for _, sr := range rep.Strangers {
		if sr.Label == int(sight.Risky) {
			risky++
		}
	}
	fmt.Printf("strangers: %d\n", len(rep.Strangers))
	fmt.Printf("risky: %d, owner answered %d questions\n", risky, rep.LabelsRequested)
	// Output:
	// strangers: 12
	// risky: 6, owner answered 9 questions
}
