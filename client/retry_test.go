package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// flakyHandler answers the first fail requests with the given status
// (and optional Retry-After), then succeeds with an empty status body.
func flakyHandler(fail int, status int, retryAfter string, hits *atomic.Int64) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := hits.Add(1)
		if n <= int64(fail) {
			if retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(status)
			w.Write([]byte(`{"error":{"code":"over_budget","message":"busy"}}`))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"id":"e000001","status":"done","owner":1,"queries":0}`))
	})
}

func TestRetryOn429ThenSuccess(t *testing.T) {
	var hits atomic.Int64
	hs := httptest.NewServer(flakyHandler(2, http.StatusTooManyRequests, "", &hits))
	defer hs.Close()
	c := New(hs.URL)
	st, err := c.Get(context.Background(), "e000001")
	if err != nil {
		t.Fatalf("expected retries to absorb the 429s, got %v", err)
	}
	if st.ID != "e000001" {
		t.Errorf("status = %+v", st)
	}
	if got := hits.Load(); got != 3 {
		t.Errorf("server saw %d requests, want 3 (2 failures + success)", got)
	}
}

func TestRetryOn503HonorsRetryAfter(t *testing.T) {
	var hits atomic.Int64
	hs := httptest.NewServer(flakyHandler(1, http.StatusServiceUnavailable, "1", &hits))
	defer hs.Close()
	c := New(hs.URL)
	start := time.Now()
	if _, err := c.Get(context.Background(), "e000001"); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < time.Second {
		t.Errorf("retried after %v, want >= the server's Retry-After of 1s", elapsed)
	}
	if got := hits.Load(); got != 2 {
		t.Errorf("server saw %d requests, want 2", got)
	}
}

// TestRetryAfterBeyondCapFailsFast: a Retry-After the client is not
// willing to wait out returns the server's error immediately instead
// of stalling the caller.
func TestRetryAfterBeyondCapFailsFast(t *testing.T) {
	var hits atomic.Int64
	hs := httptest.NewServer(flakyHandler(99, http.StatusTooManyRequests, "60", &hits))
	defer hs.Close()
	c := New(hs.URL)
	start := time.Now()
	_, err := c.Get(context.Background(), "e000001")
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.RetryAfter != 60 {
		t.Fatalf("err = %v, want APIError carrying Retry-After 60", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("took %v, want immediate fail-fast", elapsed)
	}
	if got := hits.Load(); got != 1 {
		t.Errorf("server saw %d requests, want exactly 1", got)
	}
}

func TestNoRetryOptOut(t *testing.T) {
	var hits atomic.Int64
	hs := httptest.NewServer(flakyHandler(99, http.StatusServiceUnavailable, "", &hits))
	defer hs.Close()
	c := New(hs.URL)
	c.NoRetry = true
	_, err := c.Get(context.Background(), "e000001")
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want the raw 503", err)
	}
	if got := hits.Load(); got != 1 {
		t.Errorf("server saw %d requests, want exactly 1 with NoRetry", got)
	}
}

func TestClientErrorsAreNotRetried(t *testing.T) {
	var hits atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		w.Write([]byte(`{"error":{"code":"not_found","message":"no such estimate"}}`))
	}))
	defer hs.Close()
	c := New(hs.URL)
	if _, err := c.Get(context.Background(), "ghost"); err == nil {
		t.Fatal("expected an error")
	}
	if got := hits.Load(); got != 1 {
		t.Errorf("server saw %d requests, want 1 — 404 is not retryable", got)
	}
}

// TestTransportErrorRetriesIdempotent: a dropped connection retries a
// GET (idempotent) but never a POST, which may already have been
// applied.
func TestTransportErrorRetriesIdempotent(t *testing.T) {
	var hits atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			// Sever the connection mid-response: the client sees a
			// transport error, not an HTTP status.
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Fatal("recorder does not support hijack")
			}
			conn, _, err := hj.Hijack()
			if err != nil {
				t.Fatal(err)
			}
			conn.Close()
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"id":"e000001","status":"done","owner":1,"queries":0}`))
	}))
	defer hs.Close()

	c := New(hs.URL)
	if _, err := c.Get(context.Background(), "e000001"); err != nil {
		t.Fatalf("GET after dropped connection: %v", err)
	}
	if got := hits.Load(); got != 2 {
		t.Errorf("server saw %d requests, want 2 (drop + retry)", got)
	}

	hits.Store(0)
	_, err := c.Submit(context.Background(), &EstimateRequest{Dataset: "study", Owner: 1})
	if err == nil {
		t.Fatal("expected the dropped POST to surface its transport error")
	}
	if got := hits.Load(); got != 1 {
		t.Errorf("server saw %d POSTs, want exactly 1 — submissions must not replay", got)
	}
}

// TestClusterIgnoresUnknownAffinityNode: the affinity hint carries the
// server's own node id, which need not match the labels this router
// was configured with (sightctl accepts bare URLs with positional
// ids). A hint naming a node the router does not know must be skipped,
// not dereferenced.
func TestClusterIgnoresUnknownAffinityNode(t *testing.T) {
	var hits atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"id":"e000001","status":"done","owner":1,"queries":0,"node":"n1"}`))
	}))
	defer hs.Close()
	cl, err := NewCluster([]ClusterNode{{ID: "node1", URL: hs.URL}})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// The first Get records the server's node id ("n1") as the job's
	// affinity; the router only knows the node as "node1".
	if _, err := cl.Get(ctx, "e000001"); err != nil {
		t.Fatal(err)
	}
	// The second Get orders the unknown affinity node first.
	st, err := cl.Get(ctx, "e000001")
	if err != nil {
		t.Fatalf("Get with unknown affinity hint: %v", err)
	}
	if st.Status != StatusDone {
		t.Errorf("status = %q, want %q", st.Status, StatusDone)
	}
	if got := hits.Load(); got != 2 {
		t.Errorf("server saw %d requests, want 2", got)
	}
}

func TestRetryRespectsContext(t *testing.T) {
	var hits atomic.Int64
	hs := httptest.NewServer(flakyHandler(99, http.StatusServiceUnavailable, "2", &hits))
	defer hs.Close()
	c := New(hs.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Get(ctx, "e000001")
	if err == nil {
		t.Fatal("expected an error")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("retry loop outlived its context: %v", elapsed)
	}
}
