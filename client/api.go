// Package client is the typed Go client for sightd, the HTTP serving
// layer over the risk-estimation fleet (cmd/sightd, internal/server).
// It also defines the wire types of the /v1 API — both sides of the
// protocol import this package, so client and server cannot drift.
//
// The protocol mirrors the paper's deployment shape: the Sight system
// was a live Facebook application answering owner queries, and the
// serving layer carries the same interaction over HTTP/JSON — submit
// an estimate job, surface the active-learning loop's owner questions
// via long-poll, post the owner's answers back, download the final
// risk report. See docs/API.md for the full endpoint reference.
package client

import (
	"errors"
	"fmt"
	"math"
	"time"

	"sightrisk"
)

// Annotator modes accepted by EstimateRequest.Annotator.
const (
	// AnnotatorStored answers owner questions server-side from the
	// referenced dataset's stored labels — no wire loop.
	AnnotatorStored = "stored"
	// AnnotatorRemote surfaces owner questions over the wire: the
	// client long-polls GET /v1/estimates/{id}/questions and posts
	// answers to POST /v1/estimates/{id}/answers.
	AnnotatorRemote = "remote"
)

// Job statuses reported by EstimateStatus.Status.
const (
	// StatusQueued: accepted, waiting for a shared worker slot.
	StatusQueued = "queued"
	// StatusRunning: the pipeline is executing (and, for remote
	// annotators, may be waiting on an answer).
	StatusRunning = "running"
	// StatusDone: finished; EstimateStatus.Report is set. A report can
	// be partial (Report.Partial) after a deadline or cancellation.
	StatusDone = "done"
	// StatusFailed: a hard failure; EstimateStatus.Error is set.
	StatusFailed = "failed"
)

// APIError is the structured error envelope every non-2xx response
// carries (under the "error" key).
type APIError struct {
	// Code is a stable machine-readable identifier: "bad_request",
	// "not_found", "over_budget", "conflict", "draining", "internal";
	// a failed job's EstimateStatus.Error also uses "canceled" (the job
	// was canceled or timed out before it started running).
	Code string `json:"code"`
	// Message is the human-readable description.
	Message string `json:"message"`
	// RetryAfterMillis, when non-zero, suggests how many milliseconds
	// to wait before retrying. It is the canonical retry hint of the
	// unified envelope; the Retry-After header of 429 and 503 responses
	// carries the same hint rounded up to whole seconds.
	RetryAfterMillis int64 `json:"retry_after_ms,omitempty"`
	// RetryAfter is the retry hint in whole seconds.
	//
	// Deprecated: the pre-unification field, kept populated (rounded up
	// from RetryAfterMillis) so existing callers keep working. Use
	// RetryDelay, which prefers the millisecond field.
	RetryAfter int `json:"retry_after,omitempty"`
	// Status is the HTTP status code (filled by the client, not sent
	// on the wire).
	Status int `json:"-"`
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("sightd: %s (%s)", e.Message, e.Code)
}

// RetryDelay returns the server-suggested wait before retrying: the
// millisecond hint when present, the legacy whole-second field
// otherwise, zero when the server sent neither.
func (e *APIError) RetryDelay() time.Duration {
	if e.RetryAfterMillis > 0 {
		return time.Duration(e.RetryAfterMillis) * time.Millisecond
	}
	return time.Duration(e.RetryAfter) * time.Second
}

// errorEnvelope is the wire shape of an error response.
type errorEnvelope struct {
	Error *APIError `json:"error"`
}

// NetworkPayload carries an inline social network for jobs that do
// not reference a server-side dataset. Users appear implicitly via
// Edges and explicitly via Users (for isolated nodes).
type NetworkPayload struct {
	// Users lists user ids (optional; edge endpoints are added
	// implicitly).
	Users []int64 `json:"users,omitempty"`
	// Edges lists undirected friendships.
	Edges [][2]int64 `json:"edges"`
	// Attributes maps user id → attribute name → value (see the
	// sight.Attr* constants).
	Attributes map[int64]map[string]string `json:"attributes,omitempty"`
	// Visibility maps user id → benefit item → visible-to-non-friends
	// (see the sight.Item* constants).
	Visibility map[int64]map[string]bool `json:"visibility,omitempty"`
}

// OptionsPayload selects pipeline options for a job. Nil fields keep
// the server's defaults (the paper's configuration); it is a strict
// subset of sight.Options — worker counts and fault-tolerance plumbing
// belong to the server, not the wire.
type OptionsPayload struct {
	// Seed drives stranger sampling (default 1).
	Seed *int64 `json:"seed,omitempty"`
	// Alpha is the number of network-similarity groups (paper: 10).
	Alpha *int `json:"alpha,omitempty"`
	// Beta is Squeezer's new-cluster threshold (paper: 0.4).
	Beta *float64 `json:"beta,omitempty"`
	// Strategy selects pooling: "npp" (default) or "nsp".
	Strategy *string `json:"strategy,omitempty"`
	// PerRound is the owner labels requested per round (paper: 3).
	PerRound *int `json:"per_round,omitempty"`
	// Confidence is the owner's confidence in [0,100] (paper mean ≈78).
	Confidence *float64 `json:"confidence,omitempty"`
	// StableRounds is the stopping rule's stability requirement
	// (paper: 2).
	StableRounds *int `json:"stable_rounds,omitempty"`
	// RMSEThreshold is the stopping rule's accuracy bar (paper: 0.5).
	RMSEThreshold *float64 `json:"rmse_threshold,omitempty"`
	// MaxRounds caps each pool's session (0 = until exhaustion).
	MaxRounds *int `json:"max_rounds,omitempty"`
	// Sampler names the query-selection strategy ("random",
	// "uncertainty", "density", "uncertainty-density").
	Sampler *string `json:"sampler,omitempty"`
	// Stopper names the stopping criterion ("combined",
	// "max-confidence", "overall-uncertainty").
	Stopper *string `json:"stopper,omitempty"`
}

// EstimateRequest is the body of POST /v1/estimates.
type EstimateRequest struct {
	// Tenant attributes the job for admission control and budgets
	// ("" is the default tenant).
	Tenant string `json:"tenant,omitempty"`
	// Dataset references a dataset preloaded on the server. Exactly
	// one of Dataset and Network must be set.
	Dataset string `json:"dataset,omitempty"`
	// Network carries an inline graph/profile payload.
	Network *NetworkPayload `json:"network,omitempty"`
	// Owner is the user the estimate is for.
	Owner int64 `json:"owner"`
	// Annotator selects where owner answers come from:
	// AnnotatorStored (requires Dataset) or AnnotatorRemote (the
	// default).
	Annotator string `json:"annotator,omitempty"`
	// Options tunes the pipeline; nil keeps the paper's defaults.
	Options *OptionsPayload `json:"options,omitempty"`
	// TimeoutMillis bounds the whole job; on expiry the run degrades
	// gracefully into a partial report (Report.Partial), exactly like
	// the library's context cancellation. 0 means no deadline.
	TimeoutMillis int64 `json:"timeout_ms,omitempty"`
}

// Question is one pending owner query, surfaced by
// GET /v1/estimates/{id}/questions. Seq identifies the question within
// its job (1-based, strictly increasing).
type Question struct {
	// Seq orders the question within its job.
	Seq int `json:"seq"`
	// Stranger is the user the owner is asked to label.
	Stranger int64 `json:"stranger"`
}

// QuestionsResponse is the body of GET /v1/estimates/{id}/questions.
// Questions is empty when the long-poll timed out with nothing
// pending, or when the job no longer asks (check Status).
type QuestionsResponse struct {
	// Status is the job's status at response time (Status* constants).
	Status string `json:"status"`
	// Questions are the currently pending owner questions.
	Questions []Question `json:"questions"`
}

// Answer is one owner answer for POST /v1/estimates/{id}/answers.
// Label uses the wire encoding of sight labels: 1 = not risky,
// 2 = risky, 3 = very risky.
type Answer struct {
	// Stranger names the user the answer is for.
	Stranger int64 `json:"stranger"`
	// Label is the owner's risk judgment in the wire encoding.
	Label int `json:"label"`
}

// AnswersRequest is the body of POST /v1/estimates/{id}/answers.
type AnswersRequest struct {
	// Answers may cover any subset of the pending questions.
	Answers []Answer `json:"answers"`
}

// AnswersResponse reports how many answers matched pending questions.
type AnswersResponse struct {
	// Accepted counts answers that matched a pending question; the rest
	// were ignored (duplicates are routine under long-poll redelivery).
	Accepted int `json:"accepted"`
}

// Update is one graph or profile change record for POST /v1/updates
// and estimate revisions — the wire form of the engine's delta
// records. Kind selects which fields are read:
//
//	"edge_add"       A, B  — add the undirected friendship (A, B)
//	"edge_remove"    A, B  — remove the friendship if present
//	"node_add"       A     — add the isolated user A
//	"profile_set"    A, Attr, Value — set a profile attribute
//	"visibility_set" A, Attr, Visible — flip a benefit item
type Update struct {
	// Kind is the record type (see above).
	Kind string `json:"kind"`
	// A is the subject user: an edge endpoint, the added node, or the
	// profile being changed.
	A int64 `json:"a"`
	// B is the second edge endpoint (edge kinds only).
	B int64 `json:"b,omitempty"`
	// Attr is the profile attribute or benefit item being changed.
	Attr string `json:"attr,omitempty"`
	// Value is the new attribute value ("profile_set" only).
	Value string `json:"value,omitempty"`
	// Visible is the new visibility ("visibility_set" only).
	Visible bool `json:"visible,omitempty"`
}

// UpdatesRequest is the body of POST /v1/updates: a batch of graph or
// profile changes applied atomically to a server-side dataset.
type UpdatesRequest struct {
	// Dataset names the (mutable, graph-backed) dataset to update.
	Dataset string `json:"dataset"`
	// Owner is the cluster routing key: in cluster mode the batch is
	// applied on the replica that owns this user's estimates, so a
	// follow-up revision for the same owner sees the updated graph.
	Owner int64 `json:"owner"`
	// Updates are the change records, applied in order.
	Updates []Update `json:"updates"`
}

// UpdatesResponse is the body of a successful POST /v1/updates.
type UpdatesResponse struct {
	// Dataset echoes the updated dataset.
	Dataset string `json:"dataset"`
	// Applied counts the update records applied.
	Applied int `json:"applied"`
	// DirtyOwners lists the dataset's study owners whose standing
	// estimates the batch may have changed (the conservative dirty
	// set); owners not listed are guaranteed unaffected.
	DirtyOwners []int64 `json:"dirty_owners,omitempty"`
	// Node is the cluster node that applied the batch ("" single-node).
	Node string `json:"node,omitempty"`
	// Merged counts the concurrent update requests coalesced into the
	// apply that carried this batch (1 when it applied alone). High-rate
	// feeds see Merged > 1: same-tick batches are merged into a single
	// graph mutation and a single invalidation.
	Merged int `json:"merged,omitempty"`
}

// ReviseRequest is the body of POST /v1/estimates/{id}/revise.
type ReviseRequest struct {
	// Updates, when non-empty, are applied to the estimate's dataset
	// first (exactly like POST /v1/updates) and double as the dirty
	// filter: a batch that provably cannot reach the owner's 2-hop
	// view serves the prior report without re-running anything.
	Updates []Update `json:"updates,omitempty"`
}

// AdviseRequest is the body of POST /v1/advise: evaluate a pending
// friendship request before the owner accepts it, by scoring the
// counterfactual graph with the candidate edge added against the
// owner's current estimate.
type AdviseRequest struct {
	// Dataset names the dataset holding the owner's network and stored
	// labels. It must be mutable (graph-backed): the counterfactual is
	// built by cloning the live graph, so snapshot-only datasets cannot
	// be advised on.
	Dataset string `json:"dataset"`
	// Owner is the user who received the friendship request; it is also
	// the cluster routing key — in cluster mode the evaluation runs on
	// the replica that owns this user's estimates, where the prior run
	// is most likely held.
	Owner int64 `json:"owner"`
	// Candidate is the user asking to become a friend.
	Candidate int64 `json:"candidate"`
	// Options tunes the pipeline; nil keeps the paper's defaults. The
	// seed must match a held prior run for the server to reuse it —
	// otherwise both sides of the counterfactual are recomputed (same
	// bytes, more work).
	Options *OptionsPayload `json:"options,omitempty"`
}

// AdviseItemDelta is one profile item's exposure change in an advise
// response: the policy-admitted stranger audience before and after the
// candidate edge, and the flagged share of that audience.
type AdviseItemDelta struct {
	// Item is the profile item (see the sight.Item* constants).
	Item string `json:"item"`
	// MaxLabel is the access policy's rule for the item: the riskiest
	// stranger label still admitted (0 = friends only).
	MaxLabel int `json:"max_label"`
	// AudienceBefore counts the labeled strangers admitted today.
	AudienceBefore int `json:"audience_before"`
	// AudienceAfter counts the admitted strangers after acceptance.
	AudienceAfter int `json:"audience_after"`
	// RiskyBefore counts admitted strangers labeled risky or worse today.
	RiskyBefore int `json:"risky_before"`
	// RiskyAfter is RiskyBefore evaluated on the counterfactual.
	RiskyAfter int `json:"risky_after"`
	// GainsAccess marks items the candidate cannot see as a stranger
	// but would see as a friend.
	GainsAccess bool `json:"gains_access,omitempty"`
}

// AdviseResponse is the body of a successful POST /v1/advise. It is
// deliberately free of host- and cache-dependent fields (no node id,
// no reuse statistics): for a fixed dataset state and request the body
// is byte-identical whichever replica answers and whether or not a
// prior run was reused.
type AdviseResponse struct {
	// Dataset echoes the evaluated dataset.
	Dataset string `json:"dataset"`
	// Owner echoes the request's owner.
	Owner int64 `json:"owner"`
	// Candidate echoes the requesting user.
	Candidate int64 `json:"candidate"`
	// Verdict is the recommendation: "accept", "review" or "decline".
	Verdict string `json:"verdict"`
	// Reason explains the verdict in one sentence.
	Reason string `json:"reason"`
	// Label is the candidate's current risk label in the wire encoding
	// (0 when the pipeline never scored them).
	Label int `json:"label,omitempty"`
	// NetworkSimilarity is NS(owner, candidate) from the current run
	// (0 for a candidate outside the 2-hop view).
	NetworkSimilarity float64 `json:"ns"`
	// NewStrangers counts users entering the owner's 2-hop view through
	// the accepted edge.
	NewStrangers int `json:"new_strangers"`
	// LostStrangers counts users leaving the stranger view (at minimum
	// the candidate, who becomes a friend).
	LostStrangers int `json:"lost_strangers"`
	// RiskyBefore counts strangers labeled risky or worse today.
	RiskyBefore int `json:"risky_before"`
	// RiskyAfter is RiskyBefore evaluated on the counterfactual.
	RiskyAfter int `json:"risky_after"`
	// VeryRiskyBefore counts only the very-risky strangers today.
	VeryRiskyBefore int `json:"very_risky_before"`
	// VeryRiskyAfter is VeryRiskyBefore on the counterfactual.
	VeryRiskyAfter int `json:"very_risky_after"`
	// Items holds one exposure-delta row per policy-covered profile
	// item, in the canonical item order.
	Items []AdviseItemDelta `json:"items"`
}

// StatsRequest is the body of POST /v1/stats (GET /v1/stats carries
// the same fields as query parameters): one privacy-preserving
// aggregate-statistics release over a dataset, computed under
// edge-level local differential privacy with visibility-aware noise
// (docs/ANALYTICS.md).
type StatsRequest struct {
	// Dataset names the dataset to release statistics for. It is also
	// the cluster routing key: all releases for one dataset are served
	// by its ring owner, which keeps the ε ledger in one place.
	Dataset string `json:"dataset"`
	// Tenant attributes the release to a tenant's ε budget and salts
	// the release seed. Optional; empty shares the anonymous budget.
	Tenant string `json:"tenant,omitempty"`
	// Epoch versions the release. The noise is seeded by the full
	// release identity — (tenant, dataset, epoch, epsilon, noise) at
	// the dataset's current generation: repeating an identical query
	// re-serves the identical bytes and costs no budget, while a new
	// epoch (or any other changed coordinate) draws fresh, independent
	// noise and is charged. Defaults to 0.
	Epoch uint64 `json:"epoch,omitempty"`
	// Epsilon is the per-mechanism privacy budget. One release invokes
	// six mechanisms, so it debits 6·Epsilon from the tenant's ledger.
	// Defaults to 1.
	Epsilon float64 `json:"epsilon,omitempty"`
	// Noise selects the regime: "visibility_aware" (default — public
	// edges exact, private edges noised) or "all_edge" (every report
	// noised; the strictly less accurate baseline, kept for
	// comparison). Exact statistics are never served.
	Noise string `json:"noise,omitempty"`
}

// StatsEstimate is one scalar statistic in a stats release.
type StatsEstimate struct {
	// Value is the unbiased estimate (un-clamped: noise may push it
	// below zero or past structural bounds).
	Value float64 `json:"value"`
	// SE is the analytic standard error of the mechanism's noise.
	SE float64 `json:"se"`
	// NoisedUsers counts the users whose reports were randomized.
	NoisedUsers int `json:"noised_users"`
}

// StatsBucket is one degree-histogram cell of a stats release.
type StatsBucket struct {
	// Label names the degree range, e.g. "4-7".
	Label string `json:"label"`
	// Count is the estimated number of users in the range.
	Count float64 `json:"count"`
}

// StatsItemRate is one benefit item's estimated visibility rate — the
// paper's Table IV/V statistic under LDP.
type StatsItemRate struct {
	// Item is the benefit item name ("wall", "photo", "friend", ...).
	Item string `json:"item"`
	// Rate is the estimated fraction of profiled users with the item
	// visible to non-friends.
	Rate float64 `json:"rate"`
	// SE is the standard error of the rate.
	SE float64 `json:"se"`
}

// StatsResponse is the body of a successful /v1/stats call. For a
// fixed (tenant, dataset, epoch, epsilon, noise) request at an
// unchanged dataset generation the body is byte-identical on every
// call and on every replica — the release is deterministic, so
// repeats re-serve the same noise instead of leaking more. Budget
// state is deliberately not in the body (it would break that
// identity); read it from /varz ("sightd_ldp").
type StatsResponse struct {
	// Dataset echoes the released dataset.
	Dataset string `json:"dataset"`
	// Tenant echoes the charged tenant ("" = anonymous).
	Tenant string `json:"tenant,omitempty"`
	// Epoch echoes the release epoch.
	Epoch uint64 `json:"epoch"`
	// Generation is the dataset's update generation at release time.
	// Applied update batches bump it; a bump refreshes the ε ledger and
	// changes the release (same epoch, new data, new exact parts).
	Generation uint64 `json:"generation"`
	// Noise is the regime the release was computed under.
	Noise string `json:"noise"`
	// Epsilon is the per-mechanism budget used.
	Epsilon float64 `json:"epsilon"`
	// Nodes is the graph's node count (public metadata).
	Nodes int `json:"nodes"`
	// Profiles is the number of users carrying a profile.
	Profiles int `json:"profiles"`
	// PublicUsers counts users whose friend list is visible to
	// non-friends (visibility policies are public metadata).
	PublicUsers int `json:"public_users"`
	// PublicEdges is the exact public-edge count.
	PublicEdges int `json:"public_edges"`
	// DegreeCap is the sensitivity cap used by the star mechanisms.
	DegreeCap int `json:"degree_cap"`
	// TriangleCap is the sensitivity cap of the triangle mechanism.
	TriangleCap int `json:"triangle_cap"`
	// EdgeCount estimates the undirected edge count.
	EdgeCount StatsEstimate `json:"edge_count"`
	// Triangles estimates the triangle count.
	Triangles StatsEstimate `json:"triangles"`
	// TwoStars estimates the 2-star (length-2 path) count.
	TwoStars StatsEstimate `json:"two_stars"`
	// ThreeStars estimates the 3-star (claw) count.
	ThreeStars StatsEstimate `json:"three_stars"`
	// DegreeHist estimates the degree distribution over fixed
	// log-scale buckets.
	DegreeHist []StatsBucket `json:"degree_hist"`
	// DegreeHistSE is the per-bucket worst-case standard error of the
	// histogram.
	DegreeHistSE float64 `json:"degree_hist_se"`
	// Visibility estimates the per-item visibility rates.
	Visibility []StatsItemRate `json:"visibility"`
}

// PoolDelta is one line of the NDJSON stream served by
// GET /v1/estimates/{id}/stream: a per-pool report delta, emitted as
// each pool's result becomes final. The terminal line has Done set
// and carries the job's final status (and report or error).
type PoolDelta struct {
	// Seq orders deltas within the job (1-based, strictly increasing).
	Seq int `json:"seq,omitempty"`
	// Pool identifies the pool ("" on the terminal line).
	Pool string `json:"pool,omitempty"`
	// Index locates the pool in the run's pool order (0-based).
	Index int `json:"index"`
	// Total is the run's pool count.
	Total int `json:"total,omitempty"`
	// Status is the pool's outcome: "complete" or "partial".
	Status string `json:"status,omitempty"`
	// Reused marks pools spliced from the prior run during an
	// incremental revision (their strangers did not change).
	Reused bool `json:"reused,omitempty"`
	// Strangers are the pool members' final risk entries.
	Strangers []StrangerRisk `json:"strangers,omitempty"`
	// Done marks the terminal line.
	Done bool `json:"done,omitempty"`
	// JobStatus is the job's final status (terminal line only).
	JobStatus string `json:"job_status,omitempty"`
	// Report is the final report (terminal line of a done job).
	Report *Report `json:"report,omitempty"`
	// Error is the failure (terminal line of a failed job).
	Error *APIError `json:"error,omitempty"`
}

// StrangerRisk is one stranger's entry in a wire report; it mirrors
// sight.StrangerRisk field for field.
type StrangerRisk struct {
	// User identifies the stranger.
	User int64 `json:"user"`
	// Label is the final risk label (1 not risky, 2 risky, 3 very
	// risky) — the owner's own where collected, the classifier's
	// prediction otherwise.
	Label int `json:"label"`
	// OwnerLabeled marks direct owner judgments.
	OwnerLabeled bool `json:"owner_labeled,omitempty"`
	// NetworkSimilarity is NS(owner, User) ∈ [0,1].
	NetworkSimilarity float64 `json:"ns"`
	// Pool identifies the learning pool the stranger belonged to.
	Pool string `json:"pool"`
	// Fallback marks labels synthesized after an interruption.
	Fallback bool `json:"fallback,omitempty"`
}

// Report is the wire form of sight.Report. Mean statistics that can
// be NaN (no non-trivial pools, no validation comparisons) travel as
// nulls, since JSON has no NaN.
type Report struct {
	// Owner is the user the estimate was run for.
	Owner int64 `json:"owner"`
	// Strangers holds one entry per stranger, in deterministic order.
	Strangers []StrangerRisk `json:"strangers"`
	// LabelsRequested is the owner effort spent (direct labels).
	LabelsRequested int `json:"labels_requested"`
	// Pools is the number of learning pools.
	Pools int `json:"pools"`
	// MeanRounds is the mean session length over non-trivial pools
	// (null when all pools were trivial).
	MeanRounds *float64 `json:"mean_rounds"`
	// ExactMatchRate is the validation accuracy (null without
	// validation comparisons).
	ExactMatchRate *float64 `json:"exact_match_rate"`
	// Partial reports graceful degradation (deadline, cancellation,
	// owner abandonment); Interrupt carries the cause as text.
	Partial bool `json:"partial,omitempty"`
	// Interrupt is the cause behind a partial report ("" otherwise).
	Interrupt string `json:"interrupt,omitempty"`
	// PoolStatus maps pool id → "complete" | "partial".
	PoolStatus map[string]string `json:"pool_status"`
}

// EstimateStatus is the body of GET /v1/estimates/{id} (and, without
// Report, of the 202 response to POST /v1/estimates).
type EstimateStatus struct {
	// ID is the server-assigned job id, the path segment of every
	// per-job endpoint.
	ID string `json:"id"`
	// Node is the cluster node currently hosting the job ("" on a
	// single-node server). Cluster-aware clients use it as a routing
	// affinity hint; after a failover it changes to the adopting node.
	Node string `json:"node,omitempty"`
	// Status is one of the Status* constants.
	Status string `json:"status"`
	// Tenant echoes the submitting tenant.
	Tenant string `json:"tenant,omitempty"`
	// Owner echoes the owner the estimate is for.
	Owner int64 `json:"owner"`
	// Queries is the owner-label spend so far (live while running).
	Queries int `json:"queries"`
	// Report is set once Status is StatusDone.
	Report *Report `json:"report,omitempty"`
	// Error is set once Status is StatusFailed.
	Error *APIError `json:"error,omitempty"`
}

// HealthResponse is the body of GET /healthz.
type HealthResponse struct {
	// Status is "ok", or "draining" during shutdown.
	Status string `json:"status"`
	// Draining is true after shutdown began: the server answers reads
	// but rejects new estimates.
	Draining bool `json:"draining"`
	// Ready reports whether the node accepts new work. A reachable
	// replica with Ready=false is draining — a load balancer should
	// stop routing to it but must not treat it as dead (it still
	// answers reads while parking its jobs).
	Ready bool `json:"ready"`
	// Jobs counts jobs by status.
	Jobs map[string]int `json:"jobs"`
	// Node is this replica's cluster node id ("" single-node).
	Node string `json:"node,omitempty"`
	// RingVersion is the membership version the replica's placement
	// ring was built at; replicas that agree on it agree on placement.
	RingVersion int `json:"ring_version,omitempty"`
	// ShardsOwned counts the placement-ring slots this replica owns.
	ShardsOwned int `json:"shards_owned,omitempty"`
	// ShardsTotal counts all slots on the ring; ShardsOwned/ShardsTotal
	// is the keyspace fraction this replica serves (it grows as peers
	// die and their shards collapse onto the survivors).
	ShardsTotal int `json:"shards_total,omitempty"`
	// Peers maps peer node id → "alive" or "dead" as this replica
	// currently believes (cluster mode only).
	Peers map[string]string `json:"peers,omitempty"`
}

// FromReport converts a library report into its wire form — the exact
// encoding the server produces, so callers can compare a served run
// against an in-process one byte for byte (the end-to-end tests and
// riskbench -serve-rtt do).
func FromReport(r *sight.Report) *Report {
	out := &Report{
		Owner:           int64(r.Owner),
		LabelsRequested: r.LabelsRequested,
		Pools:           r.Pools,
		MeanRounds:      nanToNil(r.MeanRounds),
		ExactMatchRate:  nanToNil(r.ExactMatchRate),
		Partial:         r.Partial,
		PoolStatus:      make(map[string]string, len(r.PoolStatus)),
	}
	if r.Interrupt != nil {
		out.Interrupt = r.Interrupt.Error()
	}
	for id, st := range r.PoolStatus {
		out.PoolStatus[id] = string(st)
	}
	out.Strangers = make([]StrangerRisk, len(r.Strangers))
	for i, sr := range r.Strangers {
		out.Strangers[i] = StrangerRisk{
			User:              int64(sr.User),
			Label:             int(sr.Label),
			OwnerLabeled:      sr.OwnerLabeled,
			NetworkSimilarity: sr.NetworkSimilarity,
			Pool:              sr.Pool,
			Fallback:          sr.Fallback,
		}
	}
	return out
}

// Sight converts a wire report back into the library form, undoing
// FromReport (nulls become NaN, the interrupt cause becomes an opaque
// error). Round-tripping loses only the concrete error type of
// Interrupt — its text survives.
func (r *Report) Sight() *sight.Report {
	out := &sight.Report{
		Owner:           sight.UserID(r.Owner),
		LabelsRequested: r.LabelsRequested,
		Pools:           r.Pools,
		MeanRounds:      nilToNaN(r.MeanRounds),
		ExactMatchRate:  nilToNaN(r.ExactMatchRate),
		Partial:         r.Partial,
		PoolStatus:      make(map[string]sight.PoolStatus, len(r.PoolStatus)),
	}
	if r.Interrupt != "" {
		out.Interrupt = errors.New(r.Interrupt)
	}
	for id, st := range r.PoolStatus {
		out.PoolStatus[id] = sight.PoolStatus(st)
	}
	out.Strangers = make([]sight.StrangerRisk, len(r.Strangers))
	for i, sr := range r.Strangers {
		out.Strangers[i] = sight.StrangerRisk{
			User:              sight.UserID(sr.User),
			Label:             sight.Label(sr.Label),
			OwnerLabeled:      sr.OwnerLabeled,
			NetworkSimilarity: sr.NetworkSimilarity,
			Pool:              sr.Pool,
			Fallback:          sr.Fallback,
		}
	}
	return out
}

// NetworkFrom exports a sight.Network as an inline wire payload, the
// inverse of the server's payload import: submitting the result
// reproduces the network — same users, friendships, attributes and
// visibility flags — on the other side.
func NetworkFrom(n *sight.Network) *NetworkPayload {
	out := &NetworkPayload{}
	g := n.Graph()
	for _, u := range g.Nodes() {
		out.Users = append(out.Users, int64(u))
		for _, f := range g.Friends(u) {
			if u < f {
				out.Edges = append(out.Edges, [2]int64{int64(u), int64(f)})
			}
		}
	}
	store := n.Profiles()
	for _, u := range store.Users() {
		p := store.Get(u)
		if p == nil {
			continue
		}
		attrs := make(map[string]string, len(p.Attrs))
		for a, v := range p.Attrs {
			attrs[string(a)] = v
		}
		if len(attrs) > 0 {
			if out.Attributes == nil {
				out.Attributes = make(map[int64]map[string]string)
			}
			out.Attributes[int64(u)] = attrs
		}
		vis := make(map[string]bool, len(p.Visible))
		for item, visible := range p.Visible {
			vis[string(item)] = visible
		}
		if len(vis) > 0 {
			if out.Visibility == nil {
				out.Visibility = make(map[int64]map[string]bool)
			}
			out.Visibility[int64(u)] = vis
		}
	}
	return out
}

// nanToNil maps NaN to nil for JSON transport.
func nanToNil(v float64) *float64 {
	if math.IsNaN(v) {
		return nil
	}
	return &v
}

// nilToNaN maps a JSON null back to NaN.
func nilToNaN(v *float64) float64 {
	if v == nil {
		return math.NaN()
	}
	return *v
}

// DefaultLongPoll is the questions long-poll wait the client uses when
// none is given.
const DefaultLongPoll = 25 * time.Second
