package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"time"
)

// Retry defaults used when the corresponding Client fields are zero.
const (
	// DefaultMaxRetries is how many times a failed call is retried.
	DefaultMaxRetries = 3
	// DefaultMaxRetryWait caps the wait before any single retry; a
	// server-sent Retry-After beyond it fails fast instead of blocking
	// the caller.
	DefaultMaxRetryWait = 5 * time.Second
)

// retryBackoffBase is the first retry's backoff when the server sent
// no Retry-After; later attempts double it (jittered, capped at 1s).
const retryBackoffBase = 50 * time.Millisecond

// EstimateOptions groups the knobs of the estimate/question loop.
type EstimateOptions struct {
	// LongPoll is the server-side wait requested by Questions;
	// DefaultLongPoll when zero.
	LongPoll time.Duration
}

// RetryOptions groups the client's automatic retry policy.
type RetryOptions struct {
	// Disabled turns automatic retry off: every call maps to exactly
	// one HTTP request and the first error is returned as-is. Use it
	// when the caller runs its own retry policy (client.Cluster does).
	Disabled bool
	// MaxAttempts bounds the retry attempts after the initial request;
	// DefaultMaxRetries when zero.
	MaxAttempts int
	// MaxWait caps the wait before any single retry; DefaultMaxRetryWait
	// when zero. A server retry hint above the cap fails fast,
	// returning the server's error.
	MaxWait time.Duration
}

// AdviseOptions groups the knobs of the synchronous advise call.
type AdviseOptions struct {
	// Timeout bounds one Advise call (the server evaluates the
	// counterfactual inline, so a cold call costs a pipeline run);
	// zero leaves the caller's context in charge.
	Timeout time.Duration
}

// StatsOptions groups the knobs of the synchronous stats call.
type StatsOptions struct {
	// Timeout bounds one Stats call (the first release for a dataset
	// generation builds the estimator, which enumerates triangles);
	// zero leaves the caller's context in charge.
	Timeout time.Duration
}

// Options groups every client knob into per-concern sub-structs,
// mirroring the library's sight.Options shape.
type Options struct {
	// Estimate holds the estimate-loop knobs.
	Estimate EstimateOptions
	// Retry holds the automatic retry policy.
	Retry RetryOptions
	// Advise holds the advise-call knobs.
	Advise AdviseOptions
	// Stats holds the stats-call knobs.
	Stats StatsOptions
}

// Client is a typed HTTP client for a sightd server. The zero value is
// not usable; construct with New. Methods are safe for concurrent use.
//
// Calls automatically retry with context-aware jittered backoff: 429
// and 503 responses honor the server's retry hint (failing fast when
// it exceeds Options.Retry.MaxWait), and transport-level failures
// retry for idempotent methods (GET, DELETE) only — a submission that
// may have been accepted is never replayed. Set Options.Retry.Disabled
// to opt out.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8321".
	BaseURL string
	// HTTPClient issues the requests; http.DefaultClient when nil.
	// Long-poll calls need a generous (or zero) Timeout.
	HTTPClient *http.Client
	// Options groups the per-call knobs. A zero-value knob falls back
	// to the matching deprecated flat field below, then to the default —
	// so both old and new callers keep working unchanged.
	Options Options

	// LongPoll is the questions long-poll wait.
	//
	// Deprecated: use Options.Estimate.LongPoll.
	LongPoll time.Duration
	// NoRetry disables automatic retry.
	//
	// Deprecated: use Options.Retry.Disabled.
	NoRetry bool
	// MaxRetries bounds the retry attempts.
	//
	// Deprecated: use Options.Retry.MaxAttempts.
	MaxRetries int
	// MaxRetryWait caps the wait before any single retry.
	//
	// Deprecated: use Options.Retry.MaxWait.
	MaxRetryWait time.Duration
}

// longPoll resolves the effective questions long-poll wait.
func (c *Client) longPoll() time.Duration {
	if c.Options.Estimate.LongPoll > 0 {
		return c.Options.Estimate.LongPoll
	}
	if c.LongPoll > 0 {
		return c.LongPoll
	}
	return DefaultLongPoll
}

// retryPolicy resolves the effective retry policy, folding the
// deprecated flat fields under the grouped options.
func (c *Client) retryPolicy() (maxRetries int, maxWait time.Duration) {
	maxRetries = c.Options.Retry.MaxAttempts
	if maxRetries <= 0 {
		maxRetries = c.MaxRetries
	}
	if maxRetries <= 0 {
		maxRetries = DefaultMaxRetries
	}
	if c.Options.Retry.Disabled || c.NoRetry {
		maxRetries = 0
	}
	maxWait = c.Options.Retry.MaxWait
	if maxWait <= 0 {
		maxWait = c.MaxRetryWait
	}
	if maxWait <= 0 {
		maxWait = DefaultMaxRetryWait
	}
	return maxRetries, maxWait
}

// New returns a client for the server at baseURL (scheme + host, no
// trailing path).
func New(baseURL string) *Client {
	return &Client{BaseURL: baseURL}
}

// do issues one JSON call with the client's retry policy. A nil in
// sends no body; a nil out discards the response body. Non-2xx
// responses decode the error envelope into *APIError.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body []byte
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("client: encode request: %w", err)
		}
		body = b
	}
	maxRetries, maxWait := c.retryPolicy()
	for attempt := 0; ; attempt++ {
		err := c.doOnce(ctx, method, path, body, in != nil, out)
		if err == nil {
			return nil
		}
		if attempt >= maxRetries {
			return err
		}
		wait, retryable := retryWait(method, err, attempt, maxWait)
		if !retryable {
			return err
		}
		t := time.NewTimer(wait)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		}
		t.Stop()
	}
}

// doOnce issues one JSON round trip.
func (c *Client) doOnce(ctx context.Context, method, path string, body []byte, hasBody bool, out any) error {
	var rd io.Reader
	if hasBody {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	if hasBody {
		req.Header.Set("Content-Type", "application/json")
	}
	hc := c.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeError(resp)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	if raw, ok := out.(*[]byte); ok {
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			return fmt.Errorf("client: read response: %w", err)
		}
		*raw = b
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decode response: %w", err)
	}
	return nil
}

// retryWait decides whether the error is worth retrying and how long
// to wait first. 429/503 responses are retryable, preferring the
// server's retry hint (fail fast when it exceeds maxWait); transport
// errors are retryable for idempotent methods only.
func retryWait(method string, err error, attempt int, maxWait time.Duration) (time.Duration, bool) {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return 0, false
	}
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		if apiErr.Status != http.StatusTooManyRequests && apiErr.Status != http.StatusServiceUnavailable {
			return 0, false
		}
		if wait := apiErr.RetryDelay(); wait > 0 {
			if wait > maxWait {
				// Waiting that long inline would stall the caller; let it
				// see the budget error and decide.
				return 0, false
			}
			return wait, true
		}
		return backoff(attempt, maxWait), true
	}
	var urlErr *url.Error
	if errors.As(err, &urlErr) {
		// The connection failed or dropped. Only idempotent calls retry:
		// a POST may have been applied before the failure.
		if method == http.MethodGet || method == http.MethodDelete {
			return backoff(attempt, maxWait), true
		}
	}
	return 0, false
}

// backoff returns the jittered exponential backoff for the attempt
// (0-based): base 50ms doubling per attempt, plus up to 50% jitter,
// capped at 1s and maxWait.
func backoff(attempt int, maxWait time.Duration) time.Duration {
	if attempt > 4 {
		attempt = 4
	}
	d := retryBackoffBase << uint(attempt)
	d += time.Duration(rand.Int63n(int64(d)/2 + 1))
	if d > time.Second {
		d = time.Second
	}
	if d > maxWait {
		d = maxWait
	}
	return d
}

// decodeError turns a non-2xx response into an *APIError, synthesizing
// one when the body is not a structured envelope.
func decodeError(resp *http.Response) error {
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var env errorEnvelope
	if err := json.Unmarshal(b, &env); err == nil && env.Error != nil {
		env.Error.Status = resp.StatusCode
		if env.Error.RetryAfterMillis == 0 && env.Error.RetryAfter == 0 {
			if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil {
				env.Error.RetryAfter = ra
			}
		}
		// Keep both retry fields coherent whichever one the server (or
		// the header fallback) filled.
		if env.Error.RetryAfterMillis == 0 && env.Error.RetryAfter > 0 {
			env.Error.RetryAfterMillis = int64(env.Error.RetryAfter) * 1000
		} else if env.Error.RetryAfter == 0 && env.Error.RetryAfterMillis > 0 {
			env.Error.RetryAfter = int((env.Error.RetryAfterMillis + 999) / 1000)
		}
		return env.Error
	}
	return &APIError{
		Code:    "http_" + strconv.Itoa(resp.StatusCode),
		Message: fmt.Sprintf("%s: %s", resp.Status, bytes.TrimSpace(b)),
		Status:  resp.StatusCode,
	}
}

// Submit posts a new estimate job and returns its accepted status
// (StatusQueued or StatusRunning). Rejections surface as *APIError:
// 400 for malformed requests, 429 when the tenant is over budget
// (with RetryAfter when waiting can help), 503 while draining.
func (c *Client) Submit(ctx context.Context, req *EstimateRequest) (*EstimateStatus, error) {
	var st EstimateStatus
	if err := c.do(ctx, http.MethodPost, "/v1/estimates", req, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Get fetches a job's current status (and its report once done).
func (c *Client) Get(ctx context.Context, id string) (*EstimateStatus, error) {
	var st EstimateStatus
	if err := c.do(ctx, http.MethodGet, "/v1/estimates/"+url.PathEscape(id), nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Questions long-polls the job's pending owner questions. The call
// returns as soon as at least one question is pending, the job reaches
// a terminal state, or the server-side wait (LongPoll) elapses —
// whichever comes first. An empty Questions slice with a non-terminal
// Status means "nothing yet, poll again".
func (c *Client) Questions(ctx context.Context, id string) (*QuestionsResponse, error) {
	path := "/v1/estimates/" + url.PathEscape(id) + "/questions?wait_ms=" +
		strconv.FormatInt(c.longPoll().Milliseconds(), 10)
	var qr QuestionsResponse
	if err := c.do(ctx, http.MethodGet, path, nil, &qr); err != nil {
		return nil, err
	}
	return &qr, nil
}

// Answer posts owner answers for pending questions and returns how
// many were accepted (answers for strangers without a pending question
// are ignored, not errors — long-poll redelivery makes duplicates
// routine).
func (c *Client) Answer(ctx context.Context, id string, answers []Answer) (int, error) {
	var ar AnswersResponse
	err := c.do(ctx, http.MethodPost, "/v1/estimates/"+url.PathEscape(id)+"/answers",
		&AnswersRequest{Answers: answers}, &ar)
	if err != nil {
		return 0, err
	}
	return ar.Accepted, nil
}

// Trace downloads the job's JSONL run trace (one obs event per line).
func (c *Client) Trace(ctx context.Context, id string) ([]byte, error) {
	var raw []byte
	if err := c.do(ctx, http.MethodGet, "/v1/estimates/"+url.PathEscape(id)+"/trace", nil, &raw); err != nil {
		return nil, err
	}
	return raw, nil
}

// Cancel asks the server to stop the job. The run degrades gracefully:
// the job still completes with a partial report rather than vanishing.
func (c *Client) Cancel(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/estimates/"+url.PathEscape(id), nil, nil)
}

// Health fetches the server's health summary.
func (c *Client) Health(ctx context.Context) (*HealthResponse, error) {
	var hr HealthResponse
	if err := c.do(ctx, http.MethodGet, "/healthz", nil, &hr); err != nil {
		return nil, err
	}
	return &hr, nil
}

// Wait polls until the job reaches a terminal state and returns the
// final status. It is the completion path for stored-annotator jobs;
// remote-annotator jobs normally finish through Run instead.
func (c *Client) Wait(ctx context.Context, id string) (*EstimateStatus, error) {
	for {
		st, err := c.Get(ctx, id)
		if err != nil {
			return nil, err
		}
		if st.Status == StatusDone || st.Status == StatusFailed {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// Updates applies a batch of graph/profile updates to a server-side
// dataset (POST /v1/updates). The response lists the dataset's dirty
// owners — the standing estimates the batch may have invalidated. The
// call is not transport-retried (POST semantics); over-budget and
// draining responses still back off per the retry policy.
func (c *Client) Updates(ctx context.Context, req *UpdatesRequest) (*UpdatesResponse, error) {
	var ur UpdatesResponse
	if err := c.do(ctx, http.MethodPost, "/v1/updates", req, &ur); err != nil {
		return nil, err
	}
	return &ur, nil
}

// Revise submits an incremental re-estimation of a finished job
// (POST /v1/estimates/{id}/revise): the request's updates (if any) are
// applied to the job's dataset, then the estimate re-runs reusing
// every pool the updates left untouched. The result is a new job whose
// final report is byte-identical to a from-scratch submission against
// the updated dataset. Drive/Wait/StreamDeltas the returned job as
// usual.
func (c *Client) Revise(ctx context.Context, id string, req *ReviseRequest) (*EstimateStatus, error) {
	if req == nil {
		req = &ReviseRequest{}
	}
	var st EstimateStatus
	err := c.do(ctx, http.MethodPost, "/v1/estimates/"+url.PathEscape(id)+"/revise", req, &st)
	if err != nil {
		return nil, err
	}
	return &st, nil
}

// Advise evaluates a pending friendship request (POST /v1/advise): the
// server scores the counterfactual graph with the candidate edge added
// against the owner's current estimate and returns the per-item
// exposure delta plus an accept/review/decline verdict. The call is
// synchronous — a cold call (no prior run held server-side) costs a
// full pipeline run; Options.Advise.Timeout bounds it.
func (c *Client) Advise(ctx context.Context, req *AdviseRequest) (*AdviseResponse, error) {
	if t := c.Options.Advise.Timeout; t > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, t)
		defer cancel()
	}
	var ar AdviseResponse
	if err := c.do(ctx, http.MethodPost, "/v1/advise", req, &ar); err != nil {
		return nil, err
	}
	return &ar, nil
}

// Stats requests one privacy-preserving statistics release
// (POST /v1/stats): aggregate graph and visibility statistics under
// edge-level local differential privacy with visibility-aware noise
// (docs/ANALYTICS.md). Repeating a call with the same (tenant,
// dataset, epoch) returns byte-identical bytes and spends no extra
// budget; a new epoch draws fresh noise and debits the tenant ledger
// (6·epsilon per release, 429 with a retry hint when exhausted).
func (c *Client) Stats(ctx context.Context, req *StatsRequest) (*StatsResponse, error) {
	if t := c.Options.Stats.Timeout; t > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, t)
		defer cancel()
	}
	var sr StatsResponse
	if err := c.do(ctx, http.MethodPost, "/v1/stats", req, &sr); err != nil {
		return nil, err
	}
	return &sr, nil
}

// StreamDeltas consumes the job's NDJSON per-pool delta stream
// (GET /v1/estimates/{id}/stream), calling fn for every pool delta as
// it arrives — including pools finished before the call — and
// returning the terminal line (Done set, with the job's final status
// and report or error). A nil fn just waits for the terminal line.
// The stream is served from job state, so reconnecting replays every
// delta from the start.
func (c *Client) StreamDeltas(ctx context.Context, id string, fn func(PoolDelta) error) (*PoolDelta, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.BaseURL+"/v1/estimates/"+url.PathEscape(id)+"/stream", nil)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	hc := c.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return nil, decodeError(resp)
	}
	dec := json.NewDecoder(resp.Body)
	for {
		var d PoolDelta
		if err := dec.Decode(&d); err != nil {
			if errors.Is(err, io.EOF) {
				return nil, fmt.Errorf("client: delta stream ended without a terminal line")
			}
			return nil, fmt.Errorf("client: decode delta stream: %w", err)
		}
		if d.Done {
			return &d, nil
		}
		if fn != nil {
			if err := fn(d); err != nil {
				return nil, err
			}
		}
	}
}

// AnswerFunc supplies the owner's answer for one stranger, using the
// wire label encoding (1 not risky, 2 risky, 3 very risky). It is the
// client-side analogue of sight.Annotator; errors abort Run.
type AnswerFunc func(stranger int64) (int, error)

// Run drives a remote-annotator job to completion: it submits the
// request, long-polls questions, answers each through answer, and
// returns the final report. This is the whole paper interaction — the
// system asks the owner about a few strangers per round and learns the
// rest — carried over the wire.
func (c *Client) Run(ctx context.Context, req *EstimateRequest, answer AnswerFunc) (*Report, error) {
	st, err := c.Submit(ctx, req)
	if err != nil {
		return nil, err
	}
	return c.Drive(ctx, st.ID, answer)
}

// Drive runs the answer loop for an already-submitted job until it
// reaches a terminal state, then returns its report. A failed job
// returns its *APIError.
func (c *Client) Drive(ctx context.Context, id string, answer AnswerFunc) (*Report, error) {
	for {
		qr, err := c.Questions(ctx, id)
		if err != nil {
			return nil, err
		}
		if qr.Status == StatusDone || qr.Status == StatusFailed {
			break
		}
		if len(qr.Questions) == 0 {
			continue // long-poll timed out; ask again
		}
		answers := make([]Answer, 0, len(qr.Questions))
		for _, q := range qr.Questions {
			lab, err := answer(q.Stranger)
			if err != nil {
				return nil, fmt.Errorf("client: answer stranger %d: %w", q.Stranger, err)
			}
			answers = append(answers, Answer{Stranger: q.Stranger, Label: lab})
		}
		if _, err := c.Answer(ctx, id, answers); err != nil {
			return nil, err
		}
	}
	st, err := c.Get(ctx, id)
	if err != nil {
		return nil, err
	}
	if st.Status == StatusFailed {
		if st.Error != nil {
			return nil, st.Error
		}
		return nil, fmt.Errorf("client: job %s failed", id)
	}
	return st.Report, nil
}
