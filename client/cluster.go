package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"sync"
	"time"
)

// ClusterNode names one sightd replica for NewCluster: the node id the
// cluster was configured with and the base URL to reach it.
type ClusterNode struct {
	// ID is the replica's cluster-unique node id.
	ID string `json:"id"`
	// URL is the replica's base URL (scheme + host, no trailing path).
	URL string `json:"url"`
}

// Cluster is a client-side router over a multi-node sightd cluster. It
// keeps one single-shot Client per replica and retries each call across
// replicas: the job's last-known host first (the affinity hint carried
// by EstimateStatus.Node), then the remaining nodes with jittered
// backoff. Unreachable and draining replicas are skipped over; any
// replica can serve any request because the server side forwards to —
// or, after a node death, adopts on — the ring owner. 404 and 429
// responses return immediately: the shared store makes "not found"
// authoritative, and a tenant budget rejection will not improve on a
// different door into the same fleet.
//
// Methods mirror *Client and are safe for concurrent use.
type Cluster struct {
	// Clients holds the per-node clients, keyed by node id. They are
	// created with retries disabled (the cluster layer is the retry
	// policy); callers may tune knobs like Options.Estimate.LongPoll
	// before issuing calls.
	Clients map[string]*Client

	nodes []ClusterNode

	mu       sync.Mutex
	affinity map[string]string // job id → node id last seen hosting it
}

// NewCluster builds a router over the given replicas. At least one
// node with a non-empty id and URL is required.
func NewCluster(nodes []ClusterNode) (*Cluster, error) {
	if len(nodes) == 0 {
		return nil, errors.New("client: cluster needs at least one node")
	}
	cl := &Cluster{
		Clients:  make(map[string]*Client, len(nodes)),
		nodes:    append([]ClusterNode(nil), nodes...),
		affinity: map[string]string{},
	}
	for _, n := range nodes {
		if n.ID == "" || n.URL == "" {
			return nil, fmt.Errorf("client: cluster node needs id and url (got %+v)", n)
		}
		if _, dup := cl.Clients[n.ID]; dup {
			return nil, fmt.Errorf("client: duplicate cluster node id %q", n.ID)
		}
		cl.Clients[n.ID] = &Client{BaseURL: n.URL, Options: Options{Retry: RetryOptions{Disabled: true}}}
	}
	return cl, nil
}

// Nodes returns the configured replicas.
func (cl *Cluster) Nodes() []ClusterNode {
	return append([]ClusterNode(nil), cl.nodes...)
}

// noteNode records where a job was last seen hosted, steering future
// calls for it to that replica first.
func (cl *Cluster) noteNode(st *EstimateStatus) {
	if st == nil || st.ID == "" || st.Node == "" {
		return
	}
	cl.mu.Lock()
	cl.affinity[st.ID] = st.Node
	cl.mu.Unlock()
}

// order returns the node ids to try for the job: the affinity node
// first, then every node, twice over — enough for the cluster to
// detect a death and rebalance between our attempts. An affinity hint
// naming a node this router was not configured with (the server's node
// ids need not match the caller's labels) is ignored rather than tried.
func (cl *Cluster) order(jobID string) []string {
	ids := make([]string, 0, 2*len(cl.nodes)+1)
	if jobID != "" {
		cl.mu.Lock()
		aff, ok := cl.affinity[jobID]
		cl.mu.Unlock()
		if ok {
			if _, known := cl.Clients[aff]; known {
				ids = append(ids, aff)
			}
		}
	}
	for cycle := 0; cycle < 2; cycle++ {
		for _, n := range cl.nodes {
			ids = append(ids, n.ID)
		}
	}
	return ids
}

// clusterRetryable reports whether the error is worth trying another
// replica for: transport failures and 503s are; everything else — 404,
// 429, 400, job failures — is a real answer.
func clusterRetryable(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return apiErr.Status == http.StatusServiceUnavailable
	}
	var urlErr *url.Error
	return errors.As(err, &urlErr)
}

// try runs fn against replicas in affinity order until one answers.
func (cl *Cluster) try(ctx context.Context, jobID string, fn func(c *Client) error) error {
	var lastErr error
	for attempt, id := range cl.order(jobID) {
		c := cl.Clients[id]
		if c == nil {
			continue
		}
		err := fn(c)
		if err == nil {
			return nil
		}
		lastErr = err
		if !clusterRetryable(err) {
			return err
		}
		if attempt > 0 {
			wait := backoff(attempt-1, DefaultMaxRetryWait)
			t := time.NewTimer(wait)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return ctx.Err()
			}
			t.Stop()
		}
		if ctx.Err() != nil {
			return lastErr
		}
	}
	return lastErr
}

// Submit posts a new estimate to any live replica; the receiving node
// routes it to its ring owner. See Client.Submit.
func (cl *Cluster) Submit(ctx context.Context, req *EstimateRequest) (*EstimateStatus, error) {
	var st *EstimateStatus
	err := cl.try(ctx, "", func(c *Client) error {
		var err error
		st, err = c.Submit(ctx, req)
		return err
	})
	if err != nil {
		return nil, err
	}
	cl.noteNode(st)
	return st, nil
}

// Get fetches a job's status from its last-known host, falling back
// across replicas. See Client.Get.
func (cl *Cluster) Get(ctx context.Context, id string) (*EstimateStatus, error) {
	var st *EstimateStatus
	err := cl.try(ctx, id, func(c *Client) error {
		var err error
		st, err = c.Get(ctx, id)
		return err
	})
	if err != nil {
		return nil, err
	}
	cl.noteNode(st)
	return st, nil
}

// Questions long-polls the job's pending owner questions. See
// Client.Questions.
func (cl *Cluster) Questions(ctx context.Context, id string) (*QuestionsResponse, error) {
	var qr *QuestionsResponse
	err := cl.try(ctx, id, func(c *Client) error {
		var err error
		qr, err = c.Questions(ctx, id)
		return err
	})
	return qr, err
}

// Answer posts owner answers for pending questions. See Client.Answer.
func (cl *Cluster) Answer(ctx context.Context, id string, answers []Answer) (int, error) {
	accepted := 0
	err := cl.try(ctx, id, func(c *Client) error {
		var err error
		accepted, err = c.Answer(ctx, id, answers)
		return err
	})
	return accepted, err
}

// Cancel asks the cluster to stop the job. See Client.Cancel.
func (cl *Cluster) Cancel(ctx context.Context, id string) error {
	return cl.try(ctx, id, func(c *Client) error {
		return c.Cancel(ctx, id)
	})
}

// Wait polls until the job reaches a terminal state, surviving node
// failovers in between. See Client.Wait.
func (cl *Cluster) Wait(ctx context.Context, id string) (*EstimateStatus, error) {
	for {
		st, err := cl.Get(ctx, id)
		if err != nil {
			return nil, err
		}
		if st.Status == StatusDone || st.Status == StatusFailed {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// Run submits a remote-annotator job and drives it to completion
// across the cluster. See Client.Run.
func (cl *Cluster) Run(ctx context.Context, req *EstimateRequest, answer AnswerFunc) (*Report, error) {
	st, err := cl.Submit(ctx, req)
	if err != nil {
		return nil, err
	}
	return cl.Drive(ctx, st.ID, answer)
}

// Drive runs the answer loop for an already-submitted job until it is
// terminal, then returns its report. See Client.Drive.
func (cl *Cluster) Drive(ctx context.Context, id string, answer AnswerFunc) (*Report, error) {
	for {
		qr, err := cl.Questions(ctx, id)
		if err != nil {
			return nil, err
		}
		if qr.Status == StatusDone || qr.Status == StatusFailed {
			break
		}
		if len(qr.Questions) == 0 {
			continue // long-poll timed out; ask again
		}
		answers := make([]Answer, 0, len(qr.Questions))
		for _, q := range qr.Questions {
			lab, err := answer(q.Stranger)
			if err != nil {
				return nil, fmt.Errorf("client: answer stranger %d: %w", q.Stranger, err)
			}
			answers = append(answers, Answer{Stranger: q.Stranger, Label: lab})
		}
		if _, err := cl.Answer(ctx, id, answers); err != nil {
			return nil, err
		}
	}
	st, err := cl.Get(ctx, id)
	if err != nil {
		return nil, err
	}
	if st.Status == StatusFailed {
		if st.Error != nil {
			return nil, st.Error
		}
		return nil, fmt.Errorf("client: job %s failed", id)
	}
	return st.Report, nil
}

// Advise evaluates a pending friendship request on any live replica;
// the receiving node forwards it to the ring owner of the request's
// owner, where the prior run is most likely held. The evaluation is
// read-only and deterministic, so a retried call is safe and returns
// the same bytes whichever replica ends up answering. See
// Client.Advise.
func (cl *Cluster) Advise(ctx context.Context, req *AdviseRequest) (*AdviseResponse, error) {
	var ar *AdviseResponse
	err := cl.try(ctx, "", func(c *Client) error {
		var err error
		ar, err = c.Advise(ctx, req)
		return err
	})
	return ar, err
}

// Stats requests a privacy-preserving statistics release on any live
// replica; the receiving node forwards it to the dataset's ring owner,
// which holds the dataset's ε ledger. The release is deterministic for
// a fixed (tenant, dataset, epoch, epsilon, noise) request at an
// unchanged dataset generation, so a retried call is safe and returns
// the same bytes whichever replica ends up answering. See
// Client.Stats.
func (cl *Cluster) Stats(ctx context.Context, req *StatsRequest) (*StatsResponse, error) {
	var sr *StatsResponse
	err := cl.try(ctx, "", func(c *Client) error {
		var err error
		sr, err = c.Stats(ctx, req)
		return err
	})
	return sr, err
}

// Health fetches every replica's health summary, keyed by node id.
// Unreachable replicas map to a nil entry instead of failing the call —
// that is the "dead vs draining" distinction a balancer needs.
func (cl *Cluster) Health(ctx context.Context) map[string]*HealthResponse {
	out := make(map[string]*HealthResponse, len(cl.nodes))
	for _, n := range cl.nodes {
		hr, err := cl.Clients[n.ID].Health(ctx)
		if err != nil {
			out[n.ID] = nil
			continue
		}
		out[n.ID] = hr
	}
	return out
}
