package sight

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"
)

func TestDefaultSensitivityFacade(t *testing.T) {
	s := DefaultSensitivity()
	if len(s) != 7 {
		t.Fatalf("items = %d", len(s))
	}
	for item, v := range s {
		if v < 0 || v > 1 {
			t.Fatalf("sensitivity[%s] = %g", item, v)
		}
	}
}

func TestAccessPolicyFacade(t *testing.T) {
	p := BuildAccessPolicy(map[string]float64{
		ItemWall:  0.95,
		ItemPhoto: 0.6,
		ItemWork:  0.1,
	})
	if p.Allows(ItemWall, NotRisky) {
		t.Fatal("wall visible to strangers")
	}
	if !p.Allows(ItemPhoto, NotRisky) || p.Allows(ItemPhoto, Risky) {
		t.Fatal("photo rule wrong")
	}
	if !p.Allows(ItemWork, VeryRisky) {
		t.Fatal("low-sensitivity item should be open")
	}
	if !strings.Contains(p.String(), "wall") {
		t.Fatal("policy string missing items")
	}
}

// reportFixture runs a tiny estimation to obtain a genuine Report.
func reportFixture(t *testing.T) (*Network, *Report) {
	t.Helper()
	net, owner := demoNetwork(t, 5, 40)
	ann := AnnotatorFunc(func(s UserID) Label {
		if net.Attribute(s, AttrLocale) != "en_US" {
			return VeryRisky
		}
		if net.Attribute(s, AttrGender) == "male" {
			return Risky
		}
		return NotRisky
	})
	rep, err := EstimateRisk(context.Background(), net, owner, ann, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return net, rep
}

func TestTriageFriendRequestFacade(t *testing.T) {
	_, rep := reportFixture(t)
	sawVerdict := map[string]bool{}
	for _, sr := range rep.Strangers {
		adv, err := TriageFriendRequest(rep, sr.User)
		if err != nil {
			t.Fatal(err)
		}
		if adv.Verdict == "" || adv.Reason == "" {
			t.Fatalf("empty advice for %d", sr.User)
		}
		sawVerdict[adv.Verdict] = true
		// Very risky strangers are never plainly accepted.
		if sr.Label == VeryRisky && adv.Verdict == "accept" {
			t.Fatalf("very risky stranger %d accepted", sr.User)
		}
	}
	if !sawVerdict["decline"] {
		t.Fatalf("no declines among verdicts: %v", sawVerdict)
	}
	// Unknown stranger → review.
	adv, err := TriageFriendRequest(rep, 999999)
	if err != nil {
		t.Fatal(err)
	}
	if adv.Verdict != "review" {
		t.Fatalf("unknown stranger verdict = %s", adv.Verdict)
	}
	if _, err := TriageFriendRequest(nil, 1); err == nil {
		t.Fatal("nil report accepted")
	}
}

func TestSuggestPrivacySettingsFacade(t *testing.T) {
	_, rep := reportFixture(t)
	suggestions, err := SuggestPrivacySettings(rep, DefaultSensitivity())
	if err != nil {
		t.Fatal(err)
	}
	if len(suggestions) != 7 {
		t.Fatalf("suggestions = %d", len(suggestions))
	}
	counts := rep.CountByLabel()
	wantReach := counts[Risky] + counts[VeryRisky]
	for _, s := range suggestions {
		if s.RiskyReach != wantReach {
			t.Fatalf("reach = %d, want %d", s.RiskyReach, wantReach)
		}
		if s.Suggestion == "" {
			t.Fatalf("empty suggestion for %s", s.Item)
		}
	}
	if _, err := SuggestPrivacySettings(nil, DefaultSensitivity()); err == nil {
		t.Fatal("nil report accepted")
	}
}

func TestTuneParametersFacade(t *testing.T) {
	net, rep := reportFixture(t)
	owner := rep.Owner

	// Without prior labels: α, β, θ only.
	tuned, err := TuneParameters(net, owner, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tuned.Alpha < 5 {
		t.Fatalf("alpha = %d", tuned.Alpha)
	}
	if tuned.Beta <= 0 || tuned.Beta > 1 {
		t.Fatalf("beta = %g", tuned.Beta)
	}
	if len(tuned.Theta) != 7 {
		t.Fatalf("theta items = %d", len(tuned.Theta))
	}
	sum := 0.0
	for _, v := range tuned.Theta {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("theta sums to %g", sum)
	}
	if tuned.SqueezerWeights != nil {
		t.Fatal("weights mined without prior labels")
	}

	// With prior labels: weights appear and sum to 1.
	prior := map[UserID]Label{}
	for _, sr := range rep.Strangers {
		prior[sr.User] = sr.Label
	}
	tuned, err = TuneParameters(net, owner, prior)
	if err != nil {
		t.Fatal(err)
	}
	if len(tuned.SqueezerWeights) != 3 {
		t.Fatalf("weights = %v", tuned.SqueezerWeights)
	}

	// Apply copies only the tuned knobs.
	opts := tuned.Apply(DefaultOptions())
	if opts.Pooling.Alpha != tuned.Alpha || opts.Pooling.Beta != tuned.Beta {
		t.Fatal("Apply did not copy parameters")
	}
	if opts.Learning.PerRound != DefaultOptions().Learning.PerRound {
		t.Fatal("Apply clobbered unrelated options")
	}

	// Errors.
	if _, err := TuneParameters(nil, owner, nil); err == nil {
		t.Fatal("nil network accepted")
	}
	empty := NewNetwork()
	empty.AddUser(1)
	if _, err := TuneParameters(empty, 1, nil); err == nil {
		t.Fatal("owner without strangers accepted")
	}
}

func TestTunedOptionsRunEndToEnd(t *testing.T) {
	// The mined parameters must produce a valid pipeline run.
	net, rep := reportFixture(t)
	tuned, err := TuneParameters(net, rep.Owner, nil)
	if err != nil {
		t.Fatal(err)
	}
	opts := tuned.Apply(DefaultOptions())
	ann := AnnotatorFunc(func(UserID) Label { return Risky })
	rep2, err := EstimateRisk(context.Background(), net, rep.Owner, ann, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Strangers) != len(rep.Strangers) {
		t.Fatal("tuned run covers different stranger set")
	}
}

func TestAccessControllerFacade(t *testing.T) {
	net, rep := reportFixture(t)
	policy := BuildAccessPolicy(map[string]float64{
		ItemPhoto: 0.6, // not-risky strangers only
		ItemWork:  0.1, // everyone labeled
	})
	ctl, err := policy.Enforce(net, rep)
	if err != nil {
		t.Fatal(err)
	}
	// The owner and friends always pass.
	if ok, reason := ctl.CanSee(rep.Owner, ItemPhoto); !ok {
		t.Fatalf("owner denied: %s", reason)
	}
	friend := net.Friends(rep.Owner)[0]
	if ok, _ := ctl.CanSee(friend, ItemWall); !ok {
		t.Fatal("friend denied")
	}
	// Label gating matches the report.
	for _, sr := range rep.Strangers {
		okPhoto, _ := ctl.CanSee(sr.User, ItemPhoto)
		if want := sr.Label == NotRisky; okPhoto != want {
			t.Fatalf("stranger %d (label %v) photo access = %v", sr.User, sr.Label, okPhoto)
		}
		okWork, _ := ctl.CanSee(sr.User, ItemWork)
		if !okWork {
			t.Fatalf("stranger %d denied open-tier item", sr.User)
		}
	}
	// Unlabeled users are denied.
	if ok, _ := ctl.CanSee(987654, ItemWork); ok {
		t.Fatal("unlabeled user admitted")
	}
	// Audience counts line up with the label distribution.
	counts := rep.CountByLabel()
	aud := ctl.Audience()
	if aud[ItemPhoto] != counts[NotRisky] {
		t.Fatalf("photo audience = %d, want %d", aud[ItemPhoto], counts[NotRisky])
	}
	if aud[ItemWork] != len(rep.Strangers) {
		t.Fatalf("work audience = %d, want all %d", aud[ItemWork], len(rep.Strangers))
	}
	// Validation.
	if _, err := policy.Enforce(nil, rep); err == nil {
		t.Fatal("nil network accepted")
	}
	if _, err := policy.Enforce(net, nil); err == nil {
		t.Fatal("nil report accepted")
	}
}

// TestAdviseRequestFacade: the pre-acceptance evaluator builds the
// counterfactual via the delta engine and returns a coherent
// before/after assessment, deterministically.
func TestAdviseRequestFacade(t *testing.T) {
	net, owner := demoNetwork(t, 5, 40)
	ann := AnnotatorFunc(func(s UserID) Label {
		if net.Attribute(s, AttrLocale) != "en_US" {
			return VeryRisky
		}
		if net.Attribute(s, AttrGender) == "male" {
			return Risky
		}
		return NotRisky
	})
	opts := DefaultOptions()
	rep, err := EstimateRisk(context.Background(), net, owner, ann, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Strangers) < 3 {
		t.Fatal("fixture too small")
	}
	candidate := rep.Strangers[len(rep.Strangers)/2].User
	policy := BuildAccessPolicy(DefaultSensitivity())

	a, err := policy.AdviseRequest(context.Background(), net, owner, candidate, ann, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Candidate != candidate {
		t.Fatalf("candidate echo = %d, want %d", a.Candidate, candidate)
	}
	switch a.Verdict {
	case "accept", "review", "decline":
	default:
		t.Fatalf("verdict = %q", a.Verdict)
	}
	if a.Reason == "" {
		t.Fatal("no reason")
	}
	if len(a.Items) == 0 {
		t.Fatal("no per-item deltas")
	}
	// The candidate was a 2-hop stranger: accepting them removes them
	// from the stranger view.
	if a.LostStrangers < 1 {
		t.Errorf("LostStrangers = %d, want >= 1 (the candidate leaves the view)", a.LostStrangers)
	}
	if a.Label != rep.Label(candidate) {
		t.Errorf("assessment label %v != report label %v", a.Label, rep.Label(candidate))
	}

	// The evaluator mutates nothing: a second call returns the same
	// assessment, field for field.
	b, err := policy.AdviseRequest(context.Background(), net, owner, candidate, ann, opts)
	if err != nil {
		t.Fatal(err)
	}
	ab, bb := fmt.Sprintf("%+v", a), fmt.Sprintf("%+v", b)
	if ab != bb {
		t.Fatalf("advise is not deterministic:\n a: %s\n b: %s", ab, bb)
	}

	// Validation surface.
	if _, err := policy.AdviseRequest(context.Background(), nil, owner, candidate, ann, opts); err == nil {
		t.Fatal("nil network accepted")
	}
	if _, err := policy.AdviseRequest(context.Background(), net, owner, owner, ann, opts); err == nil {
		t.Fatal("self-request accepted")
	}
	if _, err := policy.AdviseRequest(context.Background(), net, owner, 987654, ann, opts); err == nil {
		t.Fatal("unknown candidate accepted")
	}
	friend := net.Friends(owner)[0]
	if _, err := policy.AdviseRequest(context.Background(), net, owner, friend, ann, opts); err == nil {
		t.Fatal("existing friend accepted as a candidate")
	}
	snapNet := WrapSnapshot(net.Graph().Snapshot(), net.profiles)
	if _, err := policy.AdviseRequest(context.Background(), snapNet, owner, candidate, ann, opts); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("snapshot-backed network: err = %v, want ErrReadOnly", err)
	}
}
