// Package sight is the public API of sightrisk, a reproduction of
// "Privacy in Social Networks: How Risky is Your Social Graph?"
// (Akcora, Carminati, Ferrari — ICDE 2012).
//
// The library estimates, for a social-network user (the owner), how
// risky it would be to interact with each of their strangers — the
// second-hop contacts reachable through friends of friends. Risk is
// subjective, so labels come from the owner: the engine runs the
// paper's active-learning process, asking the owner for only a few
// labels per pool of similar strangers and predicting the rest with a
// graph-based semi-supervised classifier.
//
// Typical use:
//
//	net := sight.NewNetwork()
//	net.AddFriendship(alice, bob)            // build the social graph
//	net.SetAttribute(bob, sight.AttrGender, "male")
//	...
//	report, err := sight.EstimateRisk(net, alice, annotator, sight.DefaultOptions())
//
// The annotator is anything that can answer "how risky is stranger s?"
// with one of NotRisky, Risky or VeryRisky — an interactive prompt, a
// stored questionnaire, or a model.
package sight

import (
	"context"
	"fmt"
	"math"
	"time"

	"sightrisk/internal/active"
	"sightrisk/internal/benefit"
	"sightrisk/internal/cluster"
	"sightrisk/internal/core"
	"sightrisk/internal/graph"
	"sightrisk/internal/label"
	"sightrisk/internal/profile"
	"sightrisk/internal/similarity"
)

// UserID identifies a user in the social network.
type UserID = graph.UserID

// Label is a three-valued owner risk judgment.
type Label = label.Label

// Risk label values (Section III-A of the paper).
const (
	NotRisky  = label.NotRisky
	Risky     = label.Risky
	VeryRisky = label.VeryRisky
)

// Profile attribute names accepted by Network.SetAttribute.
const (
	AttrGender    = string(profile.AttrGender)
	AttrLocale    = string(profile.AttrLocale)
	AttrLastName  = string(profile.AttrLastName)
	AttrHometown  = string(profile.AttrHometown)
	AttrEducation = string(profile.AttrEducation)
	AttrWork      = string(profile.AttrWork)
	AttrLocation  = string(profile.AttrLocation)
)

// Benefit item names accepted by Network.SetVisibility and Theta maps.
const (
	ItemWall     = string(profile.ItemWall)
	ItemPhoto    = string(profile.ItemPhoto)
	ItemFriend   = string(profile.ItemFriend)
	ItemLocation = string(profile.ItemLocation)
	ItemEdu      = string(profile.ItemEdu)
	ItemWork     = string(profile.ItemWork)
	ItemHometown = string(profile.ItemHometown)
)

// Annotator answers owner risk queries for strangers. It is the
// infallible contract: LabelStranger can neither fail nor be
// interrupted mid-call. Annotators backed by real owners — interactive
// prompts, remote frontends — should implement FallibleAnnotator
// instead, which can report timeouts, transient failures and
// abandonment; wrap an Annotator with Infallible where a
// FallibleAnnotator is expected.
//
// Thread-safety contract: implementations never need to be safe for
// concurrent use. Even with Options.Workers > 1 the engine serializes
// LabelStranger calls — the owner is asked one question at a time —
// and the question order is a deterministic function of the network
// and options (identical across runs and across any Workers > 1;
// Workers == 1 asks pool by pool in the legacy order). Interactive
// annotators therefore work unchanged. For reproducible reports the
// annotator must be deterministic per stranger: asking about the same
// stranger twice must yield the same label, and the label must not
// depend on the order questions arrive in.
type Annotator interface {
	LabelStranger(s UserID) Label
}

// AnnotatorFunc adapts a function to Annotator.
type AnnotatorFunc func(s UserID) Label

// LabelStranger implements Annotator.
func (f AnnotatorFunc) LabelStranger(s UserID) Label { return f(s) }

// FallibleAnnotator is the fault-aware annotator contract:
// LabelStranger receives the run's context (cancellation plus any
// per-query deadline from Options.Retry) and may return an error.
// Transient errors (wrapped with Transient) are retried per
// Options.Retry; ErrAbandoned and context errors degrade the run
// gracefully into a partial Report; any other error aborts the run.
// The serialization and determinism contract matches Annotator.
type FallibleAnnotator = active.FallibleAnnotator

// FallibleAnnotatorFunc adapts a function to FallibleAnnotator.
type FallibleAnnotatorFunc = active.FallibleFunc

// ErrAbandoned is returned by an annotator when the owner has walked
// away for good. The engine stops asking questions and returns a
// partial Report (see Report.Partial) instead of an error.
var ErrAbandoned = active.ErrAbandoned

// Infallible adapts a never-failing Annotator to the fallible
// contract.
func Infallible(a Annotator) FallibleAnnotator { return active.Infallible(annotatorBridge{a}) }

// Transient marks err as retriable by the engine's retry policy
// (timeouts, rate limits, dropped connections). A nil err returns nil.
func Transient(err error) error { return active.Transient(err) }

// IsTransient reports whether err is marked retriable. ErrAbandoned
// and context errors are never transient.
func IsTransient(err error) bool { return active.IsTransient(err) }

// RetryPolicy configures retries, backoff and deadlines for fallible
// annotators; see Options.Retry.
type RetryPolicy = active.RetryPolicy

// Checkpoint is the JSON-serializable state of an owner run — the
// answers collected so far. Persist snapshots from an
// Options.Checkpoint sink and pass one back via Options.Resume to
// continue an interrupted run without re-asking the owner anything.
type Checkpoint = core.Checkpoint

// SaveCheckpoint atomically writes a checkpoint to path as JSON.
func SaveCheckpoint(path string, c *Checkpoint) error { return core.SaveCheckpointFile(path, c) }

// LoadCheckpoint reads a checkpoint written by SaveCheckpoint.
func LoadCheckpoint(path string) (*Checkpoint, error) { return core.LoadCheckpointFile(path) }

// PoolStatus tells learned pools from interrupted ones in a report.
type PoolStatus = core.PoolStatus

// Pool completion states (see Report.PoolStatus).
const (
	PoolComplete = core.PoolComplete
	PoolPartial  = core.PoolPartial
)

// Network is a social graph plus user profiles — everything the risk
// engine consumes. Build it with AddFriendship / SetAttribute /
// SetVisibility, or wrap pre-built internal structures via engine
// internals (the cmd tools do the latter).
type Network struct {
	g        *graph.Graph
	profiles *profile.Store
}

// NewNetwork returns an empty network.
func NewNetwork() *Network {
	return &Network{g: graph.New(), profiles: profile.NewStore()}
}

// WrapNetwork builds a Network over existing internal structures.
// Intended for code inside this module (cmd tools, experiments);
// external users build networks incrementally.
func WrapNetwork(g *graph.Graph, store *profile.Store) *Network {
	return &Network{g: g, profiles: store}
}

// AddUser ensures the user exists (users are also added implicitly by
// AddFriendship).
func (n *Network) AddUser(u UserID) { n.g.AddNode(u) }

// AddFriendship links two users as friends.
func (n *Network) AddFriendship(a, b UserID) error { return n.g.AddEdge(a, b) }

// NumUsers returns the number of users.
func (n *Network) NumUsers() int { return n.g.NumNodes() }

// NumFriendships returns the number of friendship links.
func (n *Network) NumFriendships() int { return n.g.NumEdges() }

// Friends returns a user's friends.
func (n *Network) Friends(u UserID) []UserID { return n.g.Friends(u) }

// Strangers returns the owner's second-hop contacts — the users risk
// labels are estimated for.
func (n *Network) Strangers(owner UserID) []UserID { return n.g.Strangers(owner) }

// SetAttribute sets a categorical profile attribute (see the Attr*
// constants) for the user, creating the profile if needed.
func (n *Network) SetAttribute(u UserID, attr, value string) {
	p := n.profiles.Get(u)
	if p == nil {
		p = profile.NewProfile(u)
		n.profiles.Put(p)
	}
	p.SetAttr(profile.Attribute(attr), value)
}

// Attribute returns the user's attribute value ("" when unset).
func (n *Network) Attribute(u UserID, attr string) string {
	p := n.profiles.Get(u)
	if p == nil {
		return ""
	}
	return p.Attr(profile.Attribute(attr))
}

// SetVisibility sets whether a benefit item (see the Item* constants)
// of the user's profile is visible to non-friends.
func (n *Network) SetVisibility(u UserID, item string, visible bool) {
	p := n.profiles.Get(u)
	if p == nil {
		p = profile.NewProfile(u)
		n.profiles.Put(p)
	}
	p.SetVisible(profile.Item(item), visible)
}

// NetworkSimilarity returns NS(o,s) ∈ [0,1]: the mutual-friend overlap
// of the two users boosted by the density of the community their
// mutual friends form.
func (n *Network) NetworkSimilarity(o, s UserID) float64 {
	return similarity.NS(n.g, o, s)
}

// Benefit returns B(o,s): the θ-weighted share of the stranger's
// benefit items visible to the owner. theta maps Item* names to
// importance coefficients in [0,1].
func (n *Network) Benefit(theta map[string]float64, s UserID) (float64, error) {
	t := make(benefit.Theta, len(theta))
	for k, v := range theta {
		t[profile.Item(k)] = v
	}
	if err := t.Validate(); err != nil {
		return 0, err
	}
	return benefit.Score(t, n.profiles.Get(s)), nil
}

// Graph exposes the underlying graph (read-mostly; intended for code
// inside this module).
func (n *Network) Graph() *graph.Graph { return n.g }

// Profiles exposes the underlying profile store.
func (n *Network) Profiles() *profile.Store { return n.profiles }

// PoolStrategy selects how strangers are grouped into learning pools.
type PoolStrategy int

// Pooling strategies.
const (
	// PoolNPP uses network-and-profile based pools (the paper's
	// proposal, Definition 3).
	PoolNPP PoolStrategy = iota
	// PoolNSP uses network-similarity-only pools (the paper's
	// baseline).
	PoolNSP
)

// Options tunes the risk-estimation pipeline. The zero value is not
// valid; start from DefaultOptions.
type Options struct {
	// Alpha is the number of network similarity groups (paper: 10).
	Alpha int
	// Beta is Squeezer's new-cluster threshold (paper: 0.4).
	Beta float64
	// Strategy selects NPP (default) or NSP pooling.
	Strategy PoolStrategy
	// PerRound is the number of owner labels requested per round
	// (paper: 3).
	PerRound int
	// Confidence is the owner's confidence c ∈ [0,100] for the
	// classification-change tolerance (paper's user mean ≈ 78).
	Confidence float64
	// StableRounds is the number of consecutive stable rounds required
	// to stop (paper: 2).
	StableRounds int
	// RMSEThreshold is the accuracy bar of the stopping rule
	// (paper: 0.5).
	RMSEThreshold float64
	// MaxRounds caps each pool's session; 0 means until exhaustion.
	MaxRounds int
	// Sampler names the query-selection strategy: "random" (the
	// paper's, default), "uncertainty", "density" or
	// "uncertainty-density".
	Sampler string
	// Stopper names the stopping criterion: "combined" (the paper's,
	// default), "max-confidence" or "overall-uncertainty".
	Stopper string
	// Progress, when non-nil, is invoked after each pool's learning
	// session with (pools done, pools total, labels collected so far).
	// With Workers != 1 it is called from the pipeline's worker
	// goroutines (serialized, with monotone counts), in pool
	// *completion* order rather than pool order.
	Progress func(done, total, labels int)
	// Seed drives stranger sampling.
	Seed int64
	// Workers bounds how many pools are processed concurrently
	// (weight-matrix builds and classifier solves). 0 means one worker
	// per CPU (runtime.GOMAXPROCS(0)); 1 forces the exact legacy
	// serial path. The resulting Report is identical for every value —
	// pools keep their own seeded RNG streams, results merge in pool
	// order, and annotator queries are serialized one at a time in a
	// deterministic order (see Annotator).
	Workers int
	// Retry controls retries, exponential backoff and deadlines for
	// transient FallibleAnnotator failures. The zero value performs a
	// single attempt with no deadlines.
	Retry RetryPolicy
	// Checkpoint, when non-nil, receives a deep-copied snapshot of the
	// run's answer log after every completed round (and once more at
	// the end). Persist it (e.g. with SaveCheckpoint) to survive
	// crashes; a returned error aborts the run.
	Checkpoint func(*Checkpoint) error
	// Resume replays a prior checkpoint's answers: questions already
	// answered are never re-asked and the finished Report is
	// byte-identical to an uninterrupted run's (at any Workers value).
	// The checkpoint must match the run's owner and Seed.
	Resume *Checkpoint
	// AbandonGrace lets an in-flight owner query run this long past
	// cancellation so the answer being produced can still land and be
	// checkpointed. New questions are never asked after cancellation.
	AbandonGrace time.Duration
}

// DefaultOptions returns the paper's experimental configuration.
func DefaultOptions() Options {
	return Options{
		Alpha:         10,
		Beta:          0.4,
		Strategy:      PoolNPP,
		PerRound:      3,
		Confidence:    80,
		StableRounds:  2,
		RMSEThreshold: 0.5,
		Seed:          1,
	}
}

// Validate checks the options and returns a descriptive error for
// out-of-range fields (Alpha <= 0, Beta outside [0,1], PerRound < 1,
// Confidence outside [0,100], RMSEThreshold <= 0, negative Workers,
// bad retry policy, ...) instead of letting the pipeline silently
// misbehave.
func (o Options) Validate() error {
	cfg, err := o.coreConfig()
	if err != nil {
		return err
	}
	return cfg.Validate()
}

func (o Options) coreConfig() (core.Config, error) {
	cfg := core.DefaultConfig()
	cfg.Pool.Alpha = o.Alpha
	cfg.Pool.Squeezer.Beta = o.Beta
	switch o.Strategy {
	case PoolNPP:
		cfg.Pool.Strategy = cluster.NPP
	case PoolNSP:
		cfg.Pool.Strategy = cluster.NSP
	default:
		return core.Config{}, fmt.Errorf("sight: unknown pool strategy %d", int(o.Strategy))
	}
	cfg.Learn.PerRound = o.PerRound
	cfg.Learn.Confidence = o.Confidence
	cfg.Learn.StableRounds = o.StableRounds
	cfg.Learn.RMSEThreshold = o.RMSEThreshold
	cfg.Learn.MaxRounds = o.MaxRounds
	switch o.Sampler {
	case "", "random":
		// engine default
	case "uncertainty":
		cfg.Learn.Sampler = active.UncertaintySampler{}
	case "density":
		cfg.Learn.Sampler = active.DensitySampler{}
	case "uncertainty-density":
		cfg.Learn.Sampler = active.UncertaintyDensitySampler{}
	default:
		return core.Config{}, fmt.Errorf("sight: unknown sampler %q", o.Sampler)
	}
	switch o.Stopper {
	case "", "combined":
		// engine default built from RMSEThreshold and StableRounds
	case "max-confidence":
		cfg.Learn.Stopper = active.MaxConfidenceStopper{Confidence: 0.9}
	case "overall-uncertainty":
		cfg.Learn.Stopper = active.OverallUncertaintyStopper{Threshold: 0.4}
	default:
		return core.Config{}, fmt.Errorf("sight: unknown stopper %q", o.Stopper)
	}
	cfg.Progress = o.Progress
	cfg.Seed = o.Seed
	cfg.Workers = o.Workers
	cfg.Retry = o.Retry
	cfg.Checkpoint = o.Checkpoint
	cfg.Resume = o.Resume
	cfg.AbandonGrace = o.AbandonGrace
	return cfg, nil
}

// StrangerRisk is one stranger's entry in a risk report.
type StrangerRisk struct {
	User UserID
	// Label is the final risk label — the owner's own where one was
	// collected, the classifier's prediction otherwise.
	Label Label
	// OwnerLabeled marks direct owner judgments.
	OwnerLabeled bool
	// NetworkSimilarity is NS(owner, User).
	NetworkSimilarity float64
	// Pool identifies the learning pool the stranger belonged to.
	Pool string
	// Fallback marks labels synthesized after an interruption (last
	// predictions or majority/prior) rather than learned by a finished
	// session. Always false in complete reports.
	Fallback bool
}

// Report is the outcome of EstimateRisk.
type Report struct {
	Owner     UserID
	Strangers []StrangerRisk
	// LabelsRequested is the owner effort spent (direct labels).
	LabelsRequested int
	// Pools is the number of learning pools.
	Pools int
	// MeanRounds is the mean session length over non-trivial pools
	// (NaN when all pools were trivial).
	MeanRounds float64
	// ExactMatchRate is the validation accuracy: the share of
	// fresh owner labels exactly matching the prior round's
	// prediction (NaN without validation comparisons).
	ExactMatchRate float64
	// Partial reports graceful degradation: the owner abandoned the
	// session or the run was canceled; finished pools keep learned
	// labels and interrupted pools carry fallback labels (see
	// StrangerRisk.Fallback and PoolStatus).
	Partial bool
	// Interrupt is the cause behind a partial report (ErrAbandoned or
	// a context error); nil for complete reports.
	Interrupt error
	// PoolStatus maps each pool ID to its completion status.
	PoolStatus map[string]PoolStatus
}

// Label returns the report's label for the stranger (0 when absent).
func (r *Report) Label(s UserID) Label {
	for _, sr := range r.Strangers {
		if sr.User == s {
			return sr.Label
		}
	}
	return 0
}

// CountByLabel tallies the report's labels.
func (r *Report) CountByLabel() map[Label]int {
	out := make(map[Label]int, 3)
	for _, sr := range r.Strangers {
		out[sr.Label]++
	}
	return out
}

// EstimateRisk runs the full pipeline for the owner: group the owner's
// strangers into pools, run an active-learning session per pool
// querying the annotator, and assemble the final risk report. It is
// EstimateRiskContext with a background context and an infallible
// annotator.
func EstimateRisk(n *Network, owner UserID, ann Annotator, opts Options) (*Report, error) {
	if ann == nil {
		return nil, fmt.Errorf("sight: annotator must not be nil")
	}
	return EstimateRiskContext(context.Background(), n, owner, Infallible(ann), opts)
}

// EstimateRiskContext is the fault-tolerant entry point. ctx bounds
// the run: cancellation aborts at the next query boundary, in serial
// and parallel paths alike. Interruptions — ctx cancellation or the
// annotator returning ErrAbandoned — do not fail the run: it returns
// a partial Report (Partial true, Interrupt set) in which finished
// pools keep their learned labels and interrupted pools carry
// fallback labels. Only hard failures return an error. See
// Options.Retry, Options.Checkpoint, Options.Resume and
// Options.AbandonGrace for the rest of the fault-tolerance surface.
func EstimateRiskContext(ctx context.Context, n *Network, owner UserID, ann FallibleAnnotator, opts Options) (*Report, error) {
	if n == nil {
		return nil, fmt.Errorf("sight: network must not be nil")
	}
	if ann == nil {
		return nil, fmt.Errorf("sight: annotator must not be nil")
	}
	cfg, err := opts.coreConfig()
	if err != nil {
		return nil, err
	}
	engine := core.New(cfg)
	run, err := engine.RunOwner(ctx, n.g, n.profiles, owner, ann, math.NaN())
	if err != nil {
		return nil, err
	}

	rep := &Report{
		Owner:           owner,
		LabelsRequested: run.QueriedCount(),
		Pools:           len(run.Pools),
		MeanRounds:      run.MeanRoundsToStop(),
		Partial:         run.Partial,
		Interrupt:       run.Cause,
		PoolStatus:      make(map[string]PoolStatus, len(run.Pools)),
	}
	rep.ExactMatchRate, _ = run.ExactMatchRate()
	for _, pr := range run.Pools {
		rep.PoolStatus[pr.Pool.ID()] = pr.Status
		for _, m := range pr.Pool.Members {
			rep.Strangers = append(rep.Strangers, StrangerRisk{
				User:              m,
				Label:             pr.Result.Labels[m],
				OwnerLabeled:      pr.Result.OwnerLabeled[m],
				NetworkSimilarity: run.NSG.Score[m],
				Pool:              pr.Pool.ID(),
				Fallback:          pr.Fallback[m],
			})
		}
	}
	return rep, nil
}

// annotatorBridge adapts the public Annotator to the internal one.
type annotatorBridge struct{ a Annotator }

func (b annotatorBridge) LabelStranger(s graph.UserID) label.Label {
	return b.a.LabelStranger(s)
}

var _ active.Annotator = annotatorBridge{}
