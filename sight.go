// Package sight is the public API of sightrisk, a reproduction of
// "Privacy in Social Networks: How Risky is Your Social Graph?"
// (Akcora, Carminati, Ferrari — ICDE 2012).
//
// The library estimates, for a social-network user (the owner), how
// risky it would be to interact with each of their strangers — the
// second-hop contacts reachable through friends of friends. Risk is
// subjective, so labels come from the owner: the engine runs the
// paper's active-learning process, asking the owner for only a few
// labels per pool of similar strangers and predicting the rest with a
// graph-based semi-supervised classifier.
//
// Typical use:
//
//	net := sight.NewNetwork()
//	net.AddFriendship(alice, bob)            // build the social graph
//	net.SetAttribute(bob, sight.AttrGender, "male")
//	...
//	report, err := sight.EstimateRisk(ctx, net, alice, annotator, sight.DefaultOptions())
//
// The annotator is anything that can answer "how risky is stranger s?"
// with one of NotRisky, Risky or VeryRisky — an interactive prompt, a
// stored questionnaire, or a model. EstimateRisk accepts both the
// infallible Annotator and the fault-aware FallibleAnnotator contracts
// (see AsFallible).
package sight

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"sightrisk/internal/active"
	"sightrisk/internal/benefit"
	"sightrisk/internal/cluster"
	"sightrisk/internal/core"
	"sightrisk/internal/graph"
	"sightrisk/internal/label"
	"sightrisk/internal/obs"
	"sightrisk/internal/profile"
	"sightrisk/internal/similarity"
)

// UserID identifies a user in the social network.
type UserID = graph.UserID

// Label is a three-valued owner risk judgment.
type Label = label.Label

// Risk label values (Section III-A of the paper).
const (
	NotRisky  = label.NotRisky
	Risky     = label.Risky
	VeryRisky = label.VeryRisky
)

// Profile attribute names accepted by Network.SetAttribute.
const (
	AttrGender    = string(profile.AttrGender)
	AttrLocale    = string(profile.AttrLocale)
	AttrLastName  = string(profile.AttrLastName)
	AttrHometown  = string(profile.AttrHometown)
	AttrEducation = string(profile.AttrEducation)
	AttrWork      = string(profile.AttrWork)
	AttrLocation  = string(profile.AttrLocation)
)

// Benefit item names accepted by Network.SetVisibility and Theta maps.
const (
	ItemWall     = string(profile.ItemWall)
	ItemPhoto    = string(profile.ItemPhoto)
	ItemFriend   = string(profile.ItemFriend)
	ItemLocation = string(profile.ItemLocation)
	ItemEdu      = string(profile.ItemEdu)
	ItemWork     = string(profile.ItemWork)
	ItemHometown = string(profile.ItemHometown)
)

// Annotator answers owner risk queries for strangers. It is the
// infallible contract: LabelStranger can neither fail nor be
// interrupted mid-call. Annotators backed by real owners — interactive
// prompts, remote frontends — should implement FallibleAnnotator
// instead, which can report timeouts, transient failures and
// abandonment; wrap an Annotator with Infallible where a
// FallibleAnnotator is expected.
//
// Thread-safety contract: implementations never need to be safe for
// concurrent use. Even with Options.Workers > 1 the engine serializes
// LabelStranger calls — the owner is asked one question at a time —
// and the question order is a deterministic function of the network
// and options (identical across runs and across any Workers > 1;
// Workers == 1 asks pool by pool in the legacy order). Interactive
// annotators therefore work unchanged. For reproducible reports the
// annotator must be deterministic per stranger: asking about the same
// stranger twice must yield the same label, and the label must not
// depend on the order questions arrive in.
type Annotator interface {
	// LabelStranger returns the owner's risk label for the stranger.
	LabelStranger(s UserID) Label
}

// AnnotatorFunc adapts a function to Annotator.
type AnnotatorFunc func(s UserID) Label

// LabelStranger implements Annotator.
func (f AnnotatorFunc) LabelStranger(s UserID) Label { return f(s) }

// FallibleAnnotator is the fault-aware annotator contract:
// LabelStranger receives the run's context (cancellation plus any
// per-query deadline from Options.Retry) and may return an error.
// Transient errors (wrapped with Transient) are retried per
// Options.Retry; ErrAbandoned and context errors degrade the run
// gracefully into a partial Report; any other error aborts the run.
// The serialization and determinism contract matches Annotator.
type FallibleAnnotator = active.FallibleAnnotator

// FallibleAnnotatorFunc adapts a function to FallibleAnnotator.
type FallibleAnnotatorFunc = active.FallibleFunc

// ErrAbandoned is returned by an annotator when the owner has walked
// away for good. The engine stops asking questions and returns a
// partial Report (see Report.Partial) instead of an error.
var ErrAbandoned = active.ErrAbandoned

// Infallible adapts a never-failing Annotator to the fallible
// contract.
func Infallible(a Annotator) FallibleAnnotator { return active.Infallible(annotatorBridge{a}) }

// Transient marks err as retriable by the engine's retry policy
// (timeouts, rate limits, dropped connections). A nil err returns nil.
func Transient(err error) error { return active.Transient(err) }

// IsTransient reports whether err is marked retriable. ErrAbandoned
// and context errors are never transient.
func IsTransient(err error) bool { return active.IsTransient(err) }

// RetryPolicy configures retries, backoff and deadlines for fallible
// annotators; see Options.Retry.
type RetryPolicy = active.RetryPolicy

// Checkpoint is the JSON-serializable state of an owner run — the
// answers collected so far. Persist snapshots from an
// Options.Checkpoint sink and pass one back via Options.Resume to
// continue an interrupted run without re-asking the owner anything.
type Checkpoint = core.Checkpoint

// SaveCheckpoint atomically writes a checkpoint to path as JSON.
func SaveCheckpoint(path string, c *Checkpoint) error { return core.SaveCheckpointFile(path, c) }

// LoadCheckpoint reads a checkpoint written by SaveCheckpoint.
func LoadCheckpoint(path string) (*Checkpoint, error) { return core.LoadCheckpointFile(path) }

// PoolStatus tells learned pools from interrupted ones in a report.
type PoolStatus = core.PoolStatus

// Pool completion states (see Report.PoolStatus).
const (
	PoolComplete = core.PoolComplete
	PoolPartial  = core.PoolPartial
)

// Network is a social graph plus user profiles — everything the risk
// engine consumes. Build it with AddFriendship / SetAttribute /
// SetVisibility, or wrap pre-built internal structures via engine
// internals (the cmd tools do the latter).
type Network struct {
	g        *graph.Graph
	snap     *graph.Snapshot // non-nil for snapshot-backed (read-only) networks
	profiles *profile.Store
}

// ErrReadOnly is the panic value of structural mutation on a
// snapshot-backed Network (WrapSnapshot): frozen snapshots — often
// mmap-backed file pages — cannot grow nodes or edges.
var ErrReadOnly = errors.New("sight: network is snapshot-backed and read-only")

// NewNetwork returns an empty network.
func NewNetwork() *Network {
	return &Network{g: graph.New(), profiles: profile.NewStore()}
}

// WrapNetwork builds a Network over existing internal structures.
// Intended for code inside this module (cmd tools, experiments);
// external users build networks incrementally.
func WrapNetwork(g *graph.Graph, store *profile.Store) *Network {
	return &Network{g: g, profiles: store}
}

// WrapSnapshot builds a read-only Network over a frozen snapshot —
// typically one mapped straight from a .snap file (internal
// graph/snapfile), where no mutable graph ever exists. Reads and
// EstimateRisk work exactly as on a graph-backed network and return
// byte-identical reports; structural mutations (AddUser,
// AddFriendship) panic with ErrReadOnly. Intended for code inside
// this module, like WrapNetwork.
func WrapSnapshot(snap *graph.Snapshot, store *profile.Store) *Network {
	return &Network{snap: snap, profiles: store}
}

// AddUser ensures the user exists (users are also added implicitly by
// AddFriendship). Panics with ErrReadOnly on a snapshot-backed
// network.
func (n *Network) AddUser(u UserID) {
	if n.g == nil {
		panic(ErrReadOnly)
	}
	n.g.AddNode(u)
}

// AddFriendship links two users as friends. Snapshot-backed networks
// return ErrReadOnly.
func (n *Network) AddFriendship(a, b UserID) error {
	if n.g == nil {
		return ErrReadOnly
	}
	return n.g.AddEdge(a, b)
}

// HasUser reports whether the user exists in the network.
func (n *Network) HasUser(u UserID) bool {
	if n.g == nil {
		return n.snap.HasNode(u)
	}
	return n.g.HasNode(u)
}

// NumUsers returns the number of users.
func (n *Network) NumUsers() int {
	if n.g == nil {
		return n.snap.NumNodes()
	}
	return n.g.NumNodes()
}

// NumFriendships returns the number of friendship links.
func (n *Network) NumFriendships() int {
	if n.g == nil {
		return n.snap.NumEdges()
	}
	return n.g.NumEdges()
}

// Friends returns a user's friends.
func (n *Network) Friends(u UserID) []UserID {
	if n.g == nil {
		return n.snap.Friends(u)
	}
	return n.g.Friends(u)
}

// Strangers returns the owner's second-hop contacts — the users risk
// labels are estimated for.
func (n *Network) Strangers(owner UserID) []UserID {
	if n.g == nil {
		return n.snap.Strangers(owner)
	}
	return n.g.Strangers(owner)
}

// SetAttribute sets a categorical profile attribute (see the Attr*
// constants) for the user, creating the profile if needed.
func (n *Network) SetAttribute(u UserID, attr, value string) {
	p := n.profiles.Get(u)
	if p == nil {
		p = profile.NewProfile(u)
		n.profiles.Put(p)
	}
	p.SetAttr(profile.Attribute(attr), value)
}

// Attribute returns the user's attribute value ("" when unset).
func (n *Network) Attribute(u UserID, attr string) string {
	p := n.profiles.Get(u)
	if p == nil {
		return ""
	}
	return p.Attr(profile.Attribute(attr))
}

// SetVisibility sets whether a benefit item (see the Item* constants)
// of the user's profile is visible to non-friends.
func (n *Network) SetVisibility(u UserID, item string, visible bool) {
	p := n.profiles.Get(u)
	if p == nil {
		p = profile.NewProfile(u)
		n.profiles.Put(p)
	}
	p.SetVisible(profile.Item(item), visible)
}

// NetworkSimilarity returns NS(o,s) ∈ [0,1]: the mutual-friend overlap
// of the two users boosted by the density of the community their
// mutual friends form.
func (n *Network) NetworkSimilarity(o, s UserID) float64 {
	if n.g == nil {
		return similarity.NSSnapshot(n.snap, o, s)
	}
	return similarity.NS(n.g, o, s)
}

// Benefit returns B(o,s): the θ-weighted share of the stranger's
// benefit items visible to the owner. theta maps Item* names to
// importance coefficients in [0,1].
func (n *Network) Benefit(theta map[string]float64, s UserID) (float64, error) {
	t := make(benefit.Theta, len(theta))
	for k, v := range theta {
		t[profile.Item(k)] = v
	}
	if err := t.Validate(); err != nil {
		return 0, err
	}
	return benefit.Score(t, n.profiles.Get(s)), nil
}

// Graph exposes the underlying graph (read-mostly; intended for code
// inside this module). Nil on snapshot-backed networks — use
// FrozenSnapshot there.
func (n *Network) Graph() *graph.Graph { return n.g }

// FrozenSnapshot exposes the frozen snapshot of a snapshot-backed
// network (nil on graph-backed ones). Intended for code inside this
// module.
func (n *Network) FrozenSnapshot() *graph.Snapshot { return n.snap }

// Profiles exposes the underlying profile store.
func (n *Network) Profiles() *profile.Store { return n.profiles }

// PoolStrategy selects how strangers are grouped into learning pools.
type PoolStrategy int

// Pooling strategies.
const (
	// PoolNPP uses network-and-profile based pools (the paper's
	// proposal, Definition 3).
	PoolNPP PoolStrategy = iota
	// PoolNSP uses network-similarity-only pools (the paper's
	// baseline).
	PoolNSP
)

// Observer receives the structured event stream of a run: run, pool
// and round boundaries, every owner query, and (with
// TraceConfig.Digests) order-sensitive stage digests. Attach one via
// Options.Observability. Implementations must be safe for concurrent
// use; the engine guarantees the delivered stream is identical for
// every Options.Workers value on complete runs.
type Observer = obs.Observer

// Event is one record of the observability stream.
type Event = obs.Event

// TraceConfig tunes what the Observer stream carries.
type TraceConfig = obs.TraceConfig

// Metrics accumulates lock-free per-stage counters and histograms
// across runs (pool builds, learning rounds, owner queries, solver
// iterations, cache hits, retries). One value is safely shared by any
// number of concurrent runs; the zero value is ready to use. Attach
// one via Options.Observability.Metrics, then export it with its
// Publish (expvar) or WriteJSON methods.
type Metrics = obs.Metrics

// NewTracer returns an Observer writing one JSON event per line to w.
// Writes are serialized internally; check the tracer's error (if w can
// fail) by keeping the concrete *obs value — the stream is best-effort
// from the engine's point of view and never fails a run.
func NewTracer(w io.Writer) Observer { return obs.NewTracer(w) }

// PoolingOptions groups the stranger-pooling knobs (paper Section IV).
type PoolingOptions struct {
	// Alpha is the number of network similarity groups (paper: 10).
	Alpha int
	// Beta is Squeezer's new-cluster threshold (paper: 0.4).
	Beta float64
	// Strategy selects NPP (default) or NSP pooling.
	Strategy PoolStrategy
}

// LearningOptions groups the per-pool active-learning knobs (paper
// Section V).
type LearningOptions struct {
	// PerRound is the number of owner labels requested per round
	// (paper: 3).
	PerRound int
	// Confidence is the owner's confidence c ∈ [0,100] for the
	// classification-change tolerance (paper's user mean ≈ 78).
	Confidence float64
	// StableRounds is the number of consecutive stable rounds required
	// to stop (paper: 2).
	StableRounds int
	// RMSEThreshold is the accuracy bar of the stopping rule
	// (paper: 0.5).
	RMSEThreshold float64
	// MaxRounds caps each pool's session; 0 means until exhaustion.
	MaxRounds int
	// Sampler names the query-selection strategy: "random" (the
	// paper's, default), "uncertainty", "density" or
	// "uncertainty-density".
	Sampler string
	// Stopper names the stopping criterion: "combined" (the paper's,
	// default), "max-confidence" or "overall-uncertainty".
	Stopper string
}

// CheckpointingOptions groups the durability knobs.
type CheckpointingOptions struct {
	// Sink, when non-nil, receives a deep-copied snapshot of the run's
	// answer log after every completed round (and once more at the
	// end). Persist it (e.g. with SaveCheckpoint) to survive crashes; a
	// returned error aborts the run.
	Sink func(*Checkpoint) error
	// Resume replays a prior checkpoint's answers: questions already
	// answered are never re-asked and the finished Report is
	// byte-identical to an uninterrupted run's (at any Workers value).
	// The checkpoint must match the run's owner and Seed.
	Resume *Checkpoint
	// AbandonGrace lets an in-flight owner query run this long past
	// cancellation so the answer being produced can still land and be
	// checkpointed. New questions are never asked after cancellation.
	AbandonGrace time.Duration
}

// ObservabilityOptions groups the tracing knobs.
type ObservabilityOptions struct {
	// Observer, when non-nil, receives the run's structured event
	// stream (see NewTracer for a JSONL sink). A nil observer costs
	// nothing: no events are constructed.
	Observer Observer
	// Trace tunes the stream, e.g. Trace.Digests attaches
	// order-sensitive stage digests for determinism audits.
	Trace TraceConfig
	// Metrics, when non-nil, accumulates per-stage counters across
	// runs. Unlike Observer it carries no per-event cost — counters are
	// independent atomics — so it is cheap enough to leave on in
	// production servers (sightd feeds its /varz from one).
	Metrics *Metrics
}

// Options tunes the risk-estimation pipeline, grouped by pipeline
// stage. The zero value is not valid; start from DefaultOptions.
type Options struct {
	// Pooling controls how strangers are grouped into learning pools.
	Pooling PoolingOptions
	// Learning controls the per-pool active-learning sessions.
	Learning LearningOptions
	// Retry controls retries, exponential backoff and deadlines for
	// transient FallibleAnnotator failures. The zero value performs a
	// single attempt with no deadlines.
	Retry RetryPolicy
	// Checkpointing controls run durability and resumption.
	Checkpointing CheckpointingOptions
	// Observability attaches the structured event stream.
	Observability ObservabilityOptions
	// Progress, when non-nil, is invoked after each pool's learning
	// session with (pools done, pools total, labels collected so far).
	// With Workers != 1 it is called from the pipeline's worker
	// goroutines (serialized, with monotone counts), in pool
	// *completion* order rather than pool order.
	Progress func(done, total, labels int)
	// Seed drives stranger sampling.
	Seed int64
	// Workers bounds how many pools are processed concurrently
	// (weight-matrix builds and classifier solves). 0 means one worker
	// per CPU (runtime.GOMAXPROCS(0)); 1 forces the exact legacy
	// serial path. The resulting Report is identical for every value —
	// pools keep their own seeded RNG streams, results merge in pool
	// order, and annotator queries are serialized one at a time in a
	// deterministic order (see Annotator).
	Workers int
}

// DefaultOptions returns the paper's experimental configuration.
func DefaultOptions() Options {
	return Options{
		Pooling:  PoolingOptions{Alpha: 10, Beta: 0.4, Strategy: PoolNPP},
		Learning: LearningOptions{PerRound: 3, Confidence: 80, StableRounds: 2, RMSEThreshold: 0.5},
		Seed:     1,
	}
}

// Validate checks the options and reports every violation at once
// (joined with errors.Join), so a misconfigured caller fixes one round
// trip instead of playing whack-a-mole. Nil means the options are
// usable.
func (o Options) Validate() error {
	var errs []error
	fail := func(format string, args ...any) { errs = append(errs, fmt.Errorf("sight: "+format, args...)) }
	if o.Pooling.Alpha <= 0 {
		fail("Pooling.Alpha must be > 0, got %d", o.Pooling.Alpha)
	}
	if o.Pooling.Beta < 0 || o.Pooling.Beta > 1 {
		fail("Pooling.Beta must be in [0,1], got %g", o.Pooling.Beta)
	}
	switch o.Pooling.Strategy {
	case PoolNPP, PoolNSP:
	default:
		fail("unknown pool strategy %d", int(o.Pooling.Strategy))
	}
	if o.Learning.PerRound < 1 {
		fail("Learning.PerRound must be >= 1, got %d", o.Learning.PerRound)
	}
	if o.Learning.Confidence < 0 || o.Learning.Confidence > 100 {
		fail("Learning.Confidence must be in [0,100], got %g", o.Learning.Confidence)
	}
	if o.Learning.StableRounds < 1 {
		fail("Learning.StableRounds must be >= 1, got %d", o.Learning.StableRounds)
	}
	if o.Learning.RMSEThreshold <= 0 {
		fail("Learning.RMSEThreshold must be > 0, got %g", o.Learning.RMSEThreshold)
	}
	if o.Learning.MaxRounds < 0 {
		fail("Learning.MaxRounds must be >= 0, got %d", o.Learning.MaxRounds)
	}
	switch o.Learning.Sampler {
	case "", "random", "uncertainty", "density", "uncertainty-density":
	default:
		fail("unknown sampler %q", o.Learning.Sampler)
	}
	switch o.Learning.Stopper {
	case "", "combined", "max-confidence", "overall-uncertainty":
	default:
		fail("unknown stopper %q", o.Learning.Stopper)
	}
	if o.Workers < 0 {
		fail("Workers must be >= 0, got %d", o.Workers)
	}
	if o.Checkpointing.AbandonGrace < 0 {
		fail("Checkpointing.AbandonGrace must be >= 0, got %v", o.Checkpointing.AbandonGrace)
	}
	if err := o.Retry.Validate(); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

func (o Options) coreConfig() (core.Config, error) {
	cfg := core.DefaultConfig()
	cfg.Pool.Alpha = o.Pooling.Alpha
	cfg.Pool.Squeezer.Beta = o.Pooling.Beta
	switch o.Pooling.Strategy {
	case PoolNPP:
		cfg.Pool.Strategy = cluster.NPP
	case PoolNSP:
		cfg.Pool.Strategy = cluster.NSP
	default:
		return core.Config{}, fmt.Errorf("sight: unknown pool strategy %d", int(o.Pooling.Strategy))
	}
	cfg.Learn.PerRound = o.Learning.PerRound
	cfg.Learn.Confidence = o.Learning.Confidence
	cfg.Learn.StableRounds = o.Learning.StableRounds
	cfg.Learn.RMSEThreshold = o.Learning.RMSEThreshold
	cfg.Learn.MaxRounds = o.Learning.MaxRounds
	switch o.Learning.Sampler {
	case "", "random":
		// engine default
	case "uncertainty":
		cfg.Learn.Sampler = active.UncertaintySampler{}
	case "density":
		cfg.Learn.Sampler = active.DensitySampler{}
	case "uncertainty-density":
		cfg.Learn.Sampler = active.UncertaintyDensitySampler{}
	default:
		return core.Config{}, fmt.Errorf("sight: unknown sampler %q", o.Learning.Sampler)
	}
	switch o.Learning.Stopper {
	case "", "combined":
		// engine default built from RMSEThreshold and StableRounds
	case "max-confidence":
		cfg.Learn.Stopper = active.MaxConfidenceStopper{Confidence: 0.9}
	case "overall-uncertainty":
		cfg.Learn.Stopper = active.OverallUncertaintyStopper{Threshold: 0.4}
	default:
		return core.Config{}, fmt.Errorf("sight: unknown stopper %q", o.Learning.Stopper)
	}
	cfg.Progress = o.Progress
	cfg.Seed = o.Seed
	cfg.Workers = o.Workers
	cfg.Retry = o.Retry
	cfg.Checkpoint = o.Checkpointing.Sink
	cfg.Resume = o.Checkpointing.Resume
	cfg.AbandonGrace = o.Checkpointing.AbandonGrace
	cfg.Observer = o.Observability.Observer
	cfg.Trace = o.Observability.Trace
	cfg.Metrics = o.Observability.Metrics
	return cfg, nil
}

// EngineConfig returns the internal engine configuration these options
// denote, after validation. Intended for code inside this module (the
// serving layer hands it to the fleet scheduler so served jobs run the
// exact configuration EstimateRisk would); external users call
// EstimateRisk.
func (o Options) EngineConfig() (core.Config, error) {
	if err := o.Validate(); err != nil {
		return core.Config{}, err
	}
	return o.coreConfig()
}

// StrangerRisk is one stranger's entry in a risk report.
type StrangerRisk struct {
	// User identifies the stranger.
	User UserID
	// Label is the final risk label — the owner's own where one was
	// collected, the classifier's prediction otherwise.
	Label Label
	// OwnerLabeled marks direct owner judgments.
	OwnerLabeled bool
	// NetworkSimilarity is NS(owner, User).
	NetworkSimilarity float64
	// Pool identifies the learning pool the stranger belonged to.
	Pool string
	// Fallback marks labels synthesized after an interruption (last
	// predictions or majority/prior) rather than learned by a finished
	// session. Always false in complete reports.
	Fallback bool
}

// Report is the outcome of EstimateRisk.
type Report struct {
	// Owner is the user the estimate was run for.
	Owner UserID
	// Strangers holds one entry per stranger, in deterministic order.
	Strangers []StrangerRisk
	// LabelsRequested is the owner effort spent (direct labels).
	LabelsRequested int
	// Pools is the number of learning pools.
	Pools int
	// MeanRounds is the mean session length over non-trivial pools
	// (NaN when all pools were trivial).
	MeanRounds float64
	// ExactMatchRate is the validation accuracy: the share of
	// fresh owner labels exactly matching the prior round's
	// prediction (NaN without validation comparisons).
	ExactMatchRate float64
	// Partial reports graceful degradation: the owner abandoned the
	// session or the run was canceled; finished pools keep learned
	// labels and interrupted pools carry fallback labels (see
	// StrangerRisk.Fallback and PoolStatus).
	Partial bool
	// Interrupt is the cause behind a partial report (ErrAbandoned or
	// a context error); nil for complete reports.
	Interrupt error
	// PoolStatus maps each pool ID to its completion status.
	PoolStatus map[string]PoolStatus
}

// Label returns the report's label for the stranger (0 when absent).
func (r *Report) Label(s UserID) Label {
	for _, sr := range r.Strangers {
		if sr.User == s {
			return sr.Label
		}
	}
	return 0
}

// CountByLabel tallies the report's labels.
func (r *Report) CountByLabel() map[Label]int {
	out := make(map[Label]int, 3)
	for _, sr := range r.Strangers {
		out[sr.Label]++
	}
	return out
}

// AnyAnnotator documents EstimateRisk's annotator parameter: any value
// implementing either Annotator (infallible) or FallibleAnnotator
// (fault-aware). See AsFallible for the exact adaptation rules.
type AnyAnnotator = any

// AsFallible adapts an annotator of either public contract to the
// fault-aware one the engine runs on. A FallibleAnnotator passes
// through unchanged (and wins when a value implements both contracts);
// an Annotator is wrapped with Infallible. Anything else — including
// nil — is an error naming the offending type.
func AsFallible(ann AnyAnnotator) (FallibleAnnotator, error) {
	switch a := ann.(type) {
	case nil:
		return nil, fmt.Errorf("sight: annotator must not be nil")
	case FallibleAnnotator:
		return a, nil
	case Annotator:
		return Infallible(a), nil
	default:
		return nil, fmt.Errorf("sight: %T implements neither sight.Annotator nor sight.FallibleAnnotator", ann)
	}
}

// EstimateRisk runs the full pipeline for the owner: group the owner's
// strangers into pools, run an active-learning session per pool
// querying the annotator, and assemble the final risk report.
//
// ctx bounds the run: cancellation aborts at the next query boundary,
// in serial and parallel paths alike (nil means context.Background()).
// Interruptions — ctx cancellation or the annotator returning
// ErrAbandoned — do not fail the run: it returns a partial Report
// (Partial true, Interrupt set) in which finished pools keep their
// learned labels and interrupted pools carry fallback labels. Only
// hard failures return an error. See Options.Retry and
// Options.Checkpointing for the rest of the fault-tolerance surface,
// and Options.Observability for the structured event stream.
//
// ann accepts both annotator contracts — Annotator and
// FallibleAnnotator — adapted per AsFallible.
func EstimateRisk(ctx context.Context, n *Network, owner UserID, ann AnyAnnotator, opts Options) (*Report, error) {
	if n == nil {
		return nil, fmt.Errorf("sight: network must not be nil")
	}
	fallible, err := AsFallible(ann)
	if err != nil {
		return nil, err
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	cfg, err := opts.coreConfig()
	if err != nil {
		return nil, err
	}
	if n.snap != nil {
		// Snapshot-backed network: the engine runs entirely on the
		// frozen (possibly mmap-backed) CSR view, graph-free.
		cfg.Snapshot = n.snap
	}
	engine := core.New(cfg)
	run, err := engine.RunOwner(ctx, n.g, n.profiles, owner, fallible, math.NaN())
	if err != nil {
		return nil, err
	}
	return AssembleReport(run), nil
}

// AssembleReport builds a Report from a finished engine run, exactly
// as EstimateRisk does. Intended for code inside this module (the
// serving layer assembles reports from fleet-scheduler runs with it,
// which is what makes served reports byte-identical to in-process
// ones); external users call EstimateRisk.
func AssembleReport(run *core.OwnerRun) *Report {
	rep := &Report{
		Owner:           run.Owner,
		LabelsRequested: run.QueriedCount(),
		Pools:           len(run.Pools),
		MeanRounds:      run.MeanRoundsToStop(),
		Partial:         run.Partial,
		Interrupt:       run.Cause,
		PoolStatus:      make(map[string]PoolStatus, len(run.Pools)),
	}
	rep.ExactMatchRate, _ = run.ExactMatchRate()
	for _, pr := range run.Pools {
		rep.PoolStatus[pr.Pool.ID()] = pr.Status
		for _, m := range pr.Pool.Members {
			rep.Strangers = append(rep.Strangers, StrangerRisk{
				User:              m,
				Label:             pr.Result.Labels[m],
				OwnerLabeled:      pr.Result.OwnerLabeled[m],
				NetworkSimilarity: run.NSG.Score[m],
				Pool:              pr.Pool.ID(),
				Fallback:          pr.Fallback[m],
			})
		}
	}
	return rep
}

// EstimateRiskContext runs the pipeline with a fallible annotator.
//
// Deprecated: EstimateRisk is now context-first and accepts both
// annotator contracts directly; call it instead.
func EstimateRiskContext(ctx context.Context, n *Network, owner UserID, ann FallibleAnnotator, opts Options) (*Report, error) {
	if ann == nil {
		// Preserve the historical error rather than AsFallible's
		// nil-interface message.
		return nil, fmt.Errorf("sight: annotator must not be nil")
	}
	return EstimateRisk(ctx, n, owner, ann, opts)
}

// EstimateRiskInfallible runs the pipeline with an infallible
// annotator and a background context — the signature EstimateRisk had
// before it became context-first.
//
// Deprecated: call EstimateRisk with a context.
func EstimateRiskInfallible(n *Network, owner UserID, ann Annotator, opts Options) (*Report, error) {
	if ann == nil {
		return nil, fmt.Errorf("sight: annotator must not be nil")
	}
	return EstimateRisk(context.Background(), n, owner, ann, opts)
}

// annotatorBridge adapts the public Annotator to the internal one.
type annotatorBridge struct{ a Annotator }

func (b annotatorBridge) LabelStranger(s graph.UserID) label.Label {
	return b.a.LabelStranger(s)
}

var _ active.Annotator = annotatorBridge{}
