// Package sight is the public API of sightrisk, a reproduction of
// "Privacy in Social Networks: How Risky is Your Social Graph?"
// (Akcora, Carminati, Ferrari — ICDE 2012).
//
// The library estimates, for a social-network user (the owner), how
// risky it would be to interact with each of their strangers — the
// second-hop contacts reachable through friends of friends. Risk is
// subjective, so labels come from the owner: the engine runs the
// paper's active-learning process, asking the owner for only a few
// labels per pool of similar strangers and predicting the rest with a
// graph-based semi-supervised classifier.
//
// Typical use:
//
//	net := sight.NewNetwork()
//	net.AddFriendship(alice, bob)            // build the social graph
//	net.SetAttribute(bob, sight.AttrGender, "male")
//	...
//	report, err := sight.EstimateRisk(net, alice, annotator, sight.DefaultOptions())
//
// The annotator is anything that can answer "how risky is stranger s?"
// with one of NotRisky, Risky or VeryRisky — an interactive prompt, a
// stored questionnaire, or a model.
package sight

import (
	"fmt"
	"math"

	"sightrisk/internal/active"
	"sightrisk/internal/benefit"
	"sightrisk/internal/cluster"
	"sightrisk/internal/core"
	"sightrisk/internal/graph"
	"sightrisk/internal/label"
	"sightrisk/internal/profile"
	"sightrisk/internal/similarity"
)

// UserID identifies a user in the social network.
type UserID = graph.UserID

// Label is a three-valued owner risk judgment.
type Label = label.Label

// Risk label values (Section III-A of the paper).
const (
	NotRisky  = label.NotRisky
	Risky     = label.Risky
	VeryRisky = label.VeryRisky
)

// Profile attribute names accepted by Network.SetAttribute.
const (
	AttrGender    = string(profile.AttrGender)
	AttrLocale    = string(profile.AttrLocale)
	AttrLastName  = string(profile.AttrLastName)
	AttrHometown  = string(profile.AttrHometown)
	AttrEducation = string(profile.AttrEducation)
	AttrWork      = string(profile.AttrWork)
	AttrLocation  = string(profile.AttrLocation)
)

// Benefit item names accepted by Network.SetVisibility and Theta maps.
const (
	ItemWall     = string(profile.ItemWall)
	ItemPhoto    = string(profile.ItemPhoto)
	ItemFriend   = string(profile.ItemFriend)
	ItemLocation = string(profile.ItemLocation)
	ItemEdu      = string(profile.ItemEdu)
	ItemWork     = string(profile.ItemWork)
	ItemHometown = string(profile.ItemHometown)
)

// Annotator answers owner risk queries for strangers.
//
// Thread-safety contract: implementations never need to be safe for
// concurrent use. Even with Options.Workers > 1 the engine serializes
// LabelStranger calls — the owner is asked one question at a time —
// and the question order is a deterministic function of the network
// and options (identical across runs and across any Workers > 1;
// Workers == 1 asks pool by pool in the legacy order). Interactive
// annotators therefore work unchanged. For reproducible reports the
// annotator must be deterministic per stranger: asking about the same
// stranger twice must yield the same label, and the label must not
// depend on the order questions arrive in.
type Annotator interface {
	LabelStranger(s UserID) Label
}

// AnnotatorFunc adapts a function to Annotator.
type AnnotatorFunc func(s UserID) Label

// LabelStranger implements Annotator.
func (f AnnotatorFunc) LabelStranger(s UserID) Label { return f(s) }

// Network is a social graph plus user profiles — everything the risk
// engine consumes. Build it with AddFriendship / SetAttribute /
// SetVisibility, or wrap pre-built internal structures via engine
// internals (the cmd tools do the latter).
type Network struct {
	g        *graph.Graph
	profiles *profile.Store
}

// NewNetwork returns an empty network.
func NewNetwork() *Network {
	return &Network{g: graph.New(), profiles: profile.NewStore()}
}

// WrapNetwork builds a Network over existing internal structures.
// Intended for code inside this module (cmd tools, experiments);
// external users build networks incrementally.
func WrapNetwork(g *graph.Graph, store *profile.Store) *Network {
	return &Network{g: g, profiles: store}
}

// AddUser ensures the user exists (users are also added implicitly by
// AddFriendship).
func (n *Network) AddUser(u UserID) { n.g.AddNode(u) }

// AddFriendship links two users as friends.
func (n *Network) AddFriendship(a, b UserID) error { return n.g.AddEdge(a, b) }

// NumUsers returns the number of users.
func (n *Network) NumUsers() int { return n.g.NumNodes() }

// NumFriendships returns the number of friendship links.
func (n *Network) NumFriendships() int { return n.g.NumEdges() }

// Friends returns a user's friends.
func (n *Network) Friends(u UserID) []UserID { return n.g.Friends(u) }

// Strangers returns the owner's second-hop contacts — the users risk
// labels are estimated for.
func (n *Network) Strangers(owner UserID) []UserID { return n.g.Strangers(owner) }

// SetAttribute sets a categorical profile attribute (see the Attr*
// constants) for the user, creating the profile if needed.
func (n *Network) SetAttribute(u UserID, attr, value string) {
	p := n.profiles.Get(u)
	if p == nil {
		p = profile.NewProfile(u)
		n.profiles.Put(p)
	}
	p.SetAttr(profile.Attribute(attr), value)
}

// Attribute returns the user's attribute value ("" when unset).
func (n *Network) Attribute(u UserID, attr string) string {
	p := n.profiles.Get(u)
	if p == nil {
		return ""
	}
	return p.Attr(profile.Attribute(attr))
}

// SetVisibility sets whether a benefit item (see the Item* constants)
// of the user's profile is visible to non-friends.
func (n *Network) SetVisibility(u UserID, item string, visible bool) {
	p := n.profiles.Get(u)
	if p == nil {
		p = profile.NewProfile(u)
		n.profiles.Put(p)
	}
	p.SetVisible(profile.Item(item), visible)
}

// NetworkSimilarity returns NS(o,s) ∈ [0,1]: the mutual-friend overlap
// of the two users boosted by the density of the community their
// mutual friends form.
func (n *Network) NetworkSimilarity(o, s UserID) float64 {
	return similarity.NS(n.g, o, s)
}

// Benefit returns B(o,s): the θ-weighted share of the stranger's
// benefit items visible to the owner. theta maps Item* names to
// importance coefficients in [0,1].
func (n *Network) Benefit(theta map[string]float64, s UserID) (float64, error) {
	t := make(benefit.Theta, len(theta))
	for k, v := range theta {
		t[profile.Item(k)] = v
	}
	if err := t.Validate(); err != nil {
		return 0, err
	}
	return benefit.Score(t, n.profiles.Get(s)), nil
}

// Graph exposes the underlying graph (read-mostly; intended for code
// inside this module).
func (n *Network) Graph() *graph.Graph { return n.g }

// Profiles exposes the underlying profile store.
func (n *Network) Profiles() *profile.Store { return n.profiles }

// PoolStrategy selects how strangers are grouped into learning pools.
type PoolStrategy int

// Pooling strategies.
const (
	// PoolNPP uses network-and-profile based pools (the paper's
	// proposal, Definition 3).
	PoolNPP PoolStrategy = iota
	// PoolNSP uses network-similarity-only pools (the paper's
	// baseline).
	PoolNSP
)

// Options tunes the risk-estimation pipeline. The zero value is not
// valid; start from DefaultOptions.
type Options struct {
	// Alpha is the number of network similarity groups (paper: 10).
	Alpha int
	// Beta is Squeezer's new-cluster threshold (paper: 0.4).
	Beta float64
	// Strategy selects NPP (default) or NSP pooling.
	Strategy PoolStrategy
	// PerRound is the number of owner labels requested per round
	// (paper: 3).
	PerRound int
	// Confidence is the owner's confidence c ∈ [0,100] for the
	// classification-change tolerance (paper's user mean ≈ 78).
	Confidence float64
	// StableRounds is the number of consecutive stable rounds required
	// to stop (paper: 2).
	StableRounds int
	// RMSEThreshold is the accuracy bar of the stopping rule
	// (paper: 0.5).
	RMSEThreshold float64
	// MaxRounds caps each pool's session; 0 means until exhaustion.
	MaxRounds int
	// Sampler names the query-selection strategy: "random" (the
	// paper's, default), "uncertainty", "density" or
	// "uncertainty-density".
	Sampler string
	// Stopper names the stopping criterion: "combined" (the paper's,
	// default), "max-confidence" or "overall-uncertainty".
	Stopper string
	// Progress, when non-nil, is invoked after each pool's learning
	// session with (pools done, pools total, labels collected so far).
	// With Workers != 1 it is called from the pipeline's worker
	// goroutines (serialized, with monotone counts), in pool
	// *completion* order rather than pool order.
	Progress func(done, total, labels int)
	// Seed drives stranger sampling.
	Seed int64
	// Workers bounds how many pools are processed concurrently
	// (weight-matrix builds and classifier solves). 0 means one worker
	// per CPU (runtime.GOMAXPROCS(0)); 1 forces the exact legacy
	// serial path. The resulting Report is identical for every value —
	// pools keep their own seeded RNG streams, results merge in pool
	// order, and annotator queries are serialized one at a time in a
	// deterministic order (see Annotator).
	Workers int
}

// DefaultOptions returns the paper's experimental configuration.
func DefaultOptions() Options {
	return Options{
		Alpha:         10,
		Beta:          0.4,
		Strategy:      PoolNPP,
		PerRound:      3,
		Confidence:    80,
		StableRounds:  2,
		RMSEThreshold: 0.5,
		Seed:          1,
	}
}

func (o Options) coreConfig() (core.Config, error) {
	cfg := core.DefaultConfig()
	cfg.Pool.Alpha = o.Alpha
	cfg.Pool.Squeezer.Beta = o.Beta
	switch o.Strategy {
	case PoolNPP:
		cfg.Pool.Strategy = cluster.NPP
	case PoolNSP:
		cfg.Pool.Strategy = cluster.NSP
	default:
		return core.Config{}, fmt.Errorf("sight: unknown pool strategy %d", int(o.Strategy))
	}
	cfg.Learn.PerRound = o.PerRound
	cfg.Learn.Confidence = o.Confidence
	cfg.Learn.StableRounds = o.StableRounds
	cfg.Learn.RMSEThreshold = o.RMSEThreshold
	cfg.Learn.MaxRounds = o.MaxRounds
	switch o.Sampler {
	case "", "random":
		// engine default
	case "uncertainty":
		cfg.Learn.Sampler = active.UncertaintySampler{}
	case "density":
		cfg.Learn.Sampler = active.DensitySampler{}
	case "uncertainty-density":
		cfg.Learn.Sampler = active.UncertaintyDensitySampler{}
	default:
		return core.Config{}, fmt.Errorf("sight: unknown sampler %q", o.Sampler)
	}
	switch o.Stopper {
	case "", "combined":
		// engine default built from RMSEThreshold and StableRounds
	case "max-confidence":
		cfg.Learn.Stopper = active.MaxConfidenceStopper{Confidence: 0.9}
	case "overall-uncertainty":
		cfg.Learn.Stopper = active.OverallUncertaintyStopper{Threshold: 0.4}
	default:
		return core.Config{}, fmt.Errorf("sight: unknown stopper %q", o.Stopper)
	}
	cfg.Progress = o.Progress
	cfg.Seed = o.Seed
	cfg.Workers = o.Workers
	return cfg, nil
}

// StrangerRisk is one stranger's entry in a risk report.
type StrangerRisk struct {
	User UserID
	// Label is the final risk label — the owner's own where one was
	// collected, the classifier's prediction otherwise.
	Label Label
	// OwnerLabeled marks direct owner judgments.
	OwnerLabeled bool
	// NetworkSimilarity is NS(owner, User).
	NetworkSimilarity float64
	// Pool identifies the learning pool the stranger belonged to.
	Pool string
}

// Report is the outcome of EstimateRisk.
type Report struct {
	Owner     UserID
	Strangers []StrangerRisk
	// LabelsRequested is the owner effort spent (direct labels).
	LabelsRequested int
	// Pools is the number of learning pools.
	Pools int
	// MeanRounds is the mean session length over non-trivial pools
	// (NaN when all pools were trivial).
	MeanRounds float64
	// ExactMatchRate is the validation accuracy: the share of
	// fresh owner labels exactly matching the prior round's
	// prediction (NaN without validation comparisons).
	ExactMatchRate float64
}

// Label returns the report's label for the stranger (0 when absent).
func (r *Report) Label(s UserID) Label {
	for _, sr := range r.Strangers {
		if sr.User == s {
			return sr.Label
		}
	}
	return 0
}

// CountByLabel tallies the report's labels.
func (r *Report) CountByLabel() map[Label]int {
	out := make(map[Label]int, 3)
	for _, sr := range r.Strangers {
		out[sr.Label]++
	}
	return out
}

// EstimateRisk runs the full pipeline for the owner: group the owner's
// strangers into pools, run an active-learning session per pool
// querying the annotator, and assemble the final risk report.
func EstimateRisk(n *Network, owner UserID, ann Annotator, opts Options) (*Report, error) {
	if n == nil {
		return nil, fmt.Errorf("sight: network must not be nil")
	}
	if ann == nil {
		return nil, fmt.Errorf("sight: annotator must not be nil")
	}
	cfg, err := opts.coreConfig()
	if err != nil {
		return nil, err
	}
	engine := core.New(cfg)
	run, err := engine.RunOwner(n.g, n.profiles, owner, annotatorBridge{ann}, math.NaN())
	if err != nil {
		return nil, err
	}

	rep := &Report{
		Owner:           owner,
		LabelsRequested: run.QueriedCount(),
		Pools:           len(run.Pools),
		MeanRounds:      run.MeanRoundsToStop(),
	}
	rep.ExactMatchRate, _ = run.ExactMatchRate()
	for _, pr := range run.Pools {
		for _, m := range pr.Pool.Members {
			rep.Strangers = append(rep.Strangers, StrangerRisk{
				User:              m,
				Label:             pr.Result.Labels[m],
				OwnerLabeled:      pr.Result.OwnerLabeled[m],
				NetworkSimilarity: run.NSG.Score[m],
				Pool:              pr.Pool.ID(),
			})
		}
	}
	return rep, nil
}

// annotatorBridge adapts the public Annotator to the internal one.
type annotatorBridge struct{ a Annotator }

func (b annotatorBridge) LabelStranger(s graph.UserID) label.Label {
	return b.a.LabelStranger(s)
}

var _ active.Annotator = annotatorBridge{}
